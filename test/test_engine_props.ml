(* Deeper engine properties: extraction soundness and cost consistency,
   nested push/pop, planner behaviour on adversarial queries, scheduler
   bookkeeping, and the i64/Rational primitive algebra. *)

module E = Egglog

(* Property tests run from a pinned seed so CI failures reproduce exactly;
   override with EGGLOG_TEST_SEED=<n> (the seed is printed at startup and
   on any property failure). QCheck's own QCHECK_SEED still works but only
   covers qcheck's default RNG; this pin covers every suite below. *)
let test_seed =
  match Sys.getenv_opt "EGGLOG_TEST_SEED" with
  | None -> 0x5eed2026
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> failwith (Printf.sprintf "EGGLOG_TEST_SEED must be an integer, got %S" s))

(* Every property draws from its own state seeded the same way, so each
   reproduces in isolation regardless of suite order. *)
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| test_seed |]) t

let math_schema =
  {| (datatype M (Num i64) (Var String) (Add M M) (Mul M M) (Neg M)) |}

let gen_term_src =
  QCheck2.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  map (fun i -> Printf.sprintf "(Num %d)" i) (int_range (-5) 5);
                  map (fun i -> Printf.sprintf "(Var \"v%d\")" i) (int_bound 2);
                ]
            else
              oneof
                [
                  map (fun i -> Printf.sprintf "(Num %d)" i) (int_range (-5) 5);
                  map2 (fun a b -> Printf.sprintf "(Add %s %s)" a b) (self (n / 2)) (self (n / 2));
                  map2 (fun a b -> Printf.sprintf "(Mul %s %s)" a b) (self (n / 2)) (self (n / 2));
                  map (fun a -> Printf.sprintf "(Neg %s)" a) (self (n - 1));
                ])
          (min n 5)))

(* recompute the ast-size cost of an extracted term *)
let rec term_cost (t : E.Extract.term) =
  match t with
  | E.Extract.T_const _ -> 0
  | E.Extract.T_app (_, args) -> 1 + List.fold_left (fun acc a -> acc + term_cost a) 0 args

let prop_extraction_sound_and_consistent =
  QCheck2.Test.make ~name:"extraction: term is equal to root, cost consistent, minimal vs variants"
    ~count:60 gen_term_src (fun src ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng math_schema);
      ignore (E.run_string eng (Printf.sprintf "(define root %s)" src));
      ignore
        (E.run_string eng
           {|
        (rewrite (Add a b) (Add b a))
        (rewrite (Neg (Neg a)) a)
        (rewrite (Add (Num x) (Num y)) (Num (+ x y)))
        (rewrite (Mul (Num x) (Num y)) (Num (* x y)))
        (run 4)
      |});
      let root = E.Engine.eval_call eng "root" [] in
      match E.Engine.extract_value eng root with
      | None -> false
      | Some { E.Extract.term; cost } ->
        (* 1. reported cost equals the term's recomputed cost *)
        let consistent = term_cost term = cost in
        (* 2. the extracted term is in the root's class *)
        let printed = Sexpr.to_string (E.Extract.term_to_sexp term) in
        let sound =
          E.Engine.check_facts eng
            [ E.Ast.Eq (E.Ast.Var "root", E.Frontend.expr_of_sexp (Sexpr.parse_one printed)) ]
        in
        (* 3. no enumerated variant beats it (excluding the root alias,
           whose declared :cost is prohibitive but whose naive ast-size
           recomputation here would be 1) *)
        let variants = E.Engine.extract_candidates eng root ~max:64 in
        let is_alias = function
          | E.Extract.T_app (f, []) when E.Symbol.name f = "root" -> true
          | _ -> false
        in
        let minimal =
          List.for_all (fun v -> is_alias v || term_cost v >= cost) variants
        in
        consistent && sound && minimal)

let prop_push_pop_nesting =
  QCheck2.Test.make ~name:"nested push/pop restores sizes exactly" ~count:60
    QCheck2.Gen.(list_size (int_range 1 8) (int_range 0 2))
    (fun script ->
      let eng = E.Engine.create () in
      ignore (E.run_string eng "(sort V) (function mk (i64) V) (relation r (i64))");
      let counter = ref 0 in
      let stack = ref [] in
      let snapshot () = (E.Engine.total_rows eng, E.Engine.n_classes eng) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            ignore (E.run_string eng "(push)");
            stack := snapshot () :: !stack
          | 1 ->
            incr counter;
            ignore (E.Engine.eval_call eng "mk" [ E.Value.VInt !counter ]);
            E.Engine.set_fact eng "r" [ E.Value.VInt !counter ] E.Value.VUnit
          | _ -> (
            match !stack with
            | [] -> ()
            | saved :: rest ->
              ignore (E.run_string eng "(pop)");
              stack := rest;
              if snapshot () <> saved then ok := false))
        script;
      !ok)

let test_planner_handles_cartesian () =
  (* disconnected atoms = cross product; must still be correct *)
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (relation a (i64))
      (relation b (i64))
      (relation pair (i64 i64))
      (rule ((a x) (b y)) ((pair x y)))
      (a 1) (a 2) (a 3)
      (b 10) (b 20)
      (run)
    |});
  Alcotest.(check int) "3x2 pairs" 6 (E.Engine.table_size eng "pair")

let test_planner_shared_var_chain () =
  (* a chain query where the middle variable is the most selective *)
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (relation e (i64 i64))
      (relation tri (i64 i64 i64))
      (rule ((e x y) (e y z) (e z x)) ((tri x y z)))
      (e 1 2) (e 2 3) (e 3 1)
      (e 4 5) (e 5 4)
      (run)
    |});
  (* the 3-cycle in each rotation *)
  Alcotest.(check int) "triangles" 3 (E.Engine.table_size eng "tri")

let test_self_join_nonlinear () =
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
      (relation e (i64 i64))
      (relation dup (i64))
      (rule ((e x x)) ((dup x)))
      (e 1 1) (e 1 2) (e 2 2)
      (run)
    |});
  Alcotest.(check int) "self loops" 2 (E.Engine.table_size eng "dup")

let test_backoff_unbans () =
  (* after a ban expires the rule fires again and reaches the fixpoint *)
  let eng = E.Engine.create ~scheduler:(E.Engine.Backoff { match_limit = 1; ban_length = 1 }) () in
  ignore
    (E.run_string eng
       {|
      (relation n (i64))
      (rule ((n x) (< x 6)) ((n (+ x 1))))
      (n 0)
    |});
  let report = E.Engine.run_iterations eng 60 in
  ignore report;
  Alcotest.(check int) "reaches 7 numbers despite bans" 7 (E.Engine.table_size eng "n")

let test_i64_primitive_algebra () =
  let outputs =
    E.run_program_string
      {|
      (function v (String) i64 :merge new)
      (set (v "shl") (<< 3 4))
      (set (v "shr") (>> -16 2))
      (set (v "mod") (% 17 5))
      (set (v "abs") (abs -9))
      (check (= (v "shl") 48))
      (check (= (v "shr") -4))
      (check (= (v "mod") 2))
      (check (= (v "abs") 9))
    |}
  in
  Alcotest.(check int) "all pass" 4 (List.length outputs)

let test_rational_algebra () =
  let outputs =
    E.run_program_string
      {|
      (function v (String) Rational :merge new)
      (set (v "sum") (+ 1/3 1/6))
      (set (v "prod") (* 2/3 9/4))
      (set (v "div") (/ 1/2 1/8))
      (set (v "neg") (- 0/1 22/7))
      (check (= (v "sum") 1/2))
      (check (= (v "prod") 3/2))
      (check (= (v "div") 4/1))
      (check (= (v "neg") (- 22/7)))
    |}
  in
  Alcotest.(check int) "all pass" 4 (List.length outputs)

let prop_run_is_idempotent_at_fixpoint =
  QCheck2.Test.make ~name:"running past saturation changes nothing" ~count:40
    QCheck2.Gen.(list_size (int_range 0 12) (pair (int_bound 5) (int_bound 5)))
    (fun edges ->
      let eng = E.Engine.create () in
      ignore
        (E.run_string eng
           {|
          (relation edge (i64 i64))
          (relation path (i64 i64))
          (rule ((edge x y)) ((path x y)))
          (rule ((path x y) (edge y z)) ((path x z)))
        |});
      List.iter
        (fun (a, b) -> E.Engine.set_fact eng "edge" [ E.Value.VInt a; E.Value.VInt b ] E.Value.VUnit)
        edges;
      ignore (E.Engine.run_iterations eng 50);
      let before = (E.Engine.total_rows eng, E.Engine.n_classes eng) in
      ignore (E.Engine.run_iterations eng 10);
      (E.Engine.total_rows eng, E.Engine.n_classes eng) = before)

(* ------------------------------------------------------------------ *)
(* Differential testing: the planner + generic join vs the naive       *)
(* reference evaluator in Ref_join.                                    *)
(* ------------------------------------------------------------------ *)

let compile_env db =
  {
    E.Compile.find_func =
      (fun name -> Option.map E.Table.func (E.Database.find_func db (E.Symbol.intern name)));
  }

let join_multiset db ?cache ?(fast_paths = true) q ~ranges =
  let acc = ref [] in
  E.Join.search db ?cache ~fast_paths q ~ranges (fun binding ->
      acc := String.concat "," (Array.to_list (Array.map E.Value.to_string binding)) :: !acc);
  List.sort compare !acc

(* Same multiset through the compiled evaluator (Join.compile_plan +
   search_compiled) — the third corner of the differential triangle. *)
let compiled_multiset db ?cache ?(fast_paths = true) q ~ranges =
  let cp = E.Join.compile_plan ~fast_paths q in
  let acc = ref [] in
  E.Join.search_compiled db ?cache cp ~ranges (fun binding ->
      acc := String.concat "," (Array.to_list (Array.map E.Value.to_string binding)) :: !acc);
  List.sort compare !acc

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (fun y -> y <> x) l)))
      l

(* A randomized scenario: one or two relations (arity 1-5, so arity-5
   atoms exercise the compiled generic-binder fallback) plus an i64-valued
   function [f], facts inserted in two stamped batches, a random
   conjunctive query of 1-3 atoms over them, and optionally a primitive
   application (a binder, an always-true guard, or a never-true guard). *)
type diff_scenario = {
  ds_arities : int list;  (* relation arities: r0, r1, ... *)
  ds_inserts : (int * int list) list;  (* (table pick, raw column values) *)
  ds_split : int;  (* batch boundary, taken mod (inserts + 1) *)
  ds_atoms : (int * [ `V of int | `C of int ] list) list;
  ds_prim : int;  (* 0 = none, 1 = binder, 2 = true guard, 3 = false guard *)
  ds_ranges : int list;  (* per-atom stamp-window picks (delta mode) *)
}

let gen_scenario =
  QCheck2.Gen.(
    let arg = oneof [ map (fun i -> `V i) (int_bound 5); map (fun c -> `C c) (int_bound 3) ] in
    map
      (fun ((arities, inserts), (split, atoms), (prim, ranges)) ->
        {
          ds_arities = arities;
          ds_inserts = inserts;
          ds_split = split;
          ds_atoms = atoms;
          ds_prim = prim;
          ds_ranges = ranges;
        })
      (triple
         (pair
            (list_size (int_range 1 2) (int_range 1 5))
            (list_size (int_range 0 16) (pair (int_bound 2) (list_repeat 5 (int_bound 3)))))
         (pair (int_bound 16) (list_size (int_range 1 3) (pair (int_bound 2) (list_repeat 6 arg))))
         (pair (int_bound 3) (list_repeat 3 (int_bound 5)))))

(* Populate an engine for the scenario. Returns the database and the three
   stamp boundaries (start, between batches, end); batch 1 rows carry
   stamps in [t0, t1) and batch 2 rows in [t1, t2). *)
let build_scenario ds =
  let n_rels = List.length ds.ds_arities in
  let eng = E.Engine.create () in
  let decls = Buffer.create 64 in
  List.iteri
    (fun i a ->
      Buffer.add_string decls
        (Printf.sprintf "(relation r%d (%s))\n" i
           (String.concat " " (List.init a (fun _ -> "i64")))))
    ds.ds_arities;
  Buffer.add_string decls "(function f (i64) i64)\n";
  ignore (E.run_string eng (Buffer.contents decls));
  let db = E.Engine.database eng in
  let insert (pick, raw) =
    let pick = pick mod (n_rels + 1) in
    if pick < n_rels then begin
      let a = List.nth ds.ds_arities pick in
      let key = List.filteri (fun i _ -> i < a) raw |> List.map (fun v -> E.Value.VInt v) in
      E.Engine.set_fact eng (Printf.sprintf "r%d" pick) key E.Value.VUnit
    end
    else begin
      (* value depends only on the key, so re-insertion never conflicts *)
      let k = List.hd raw in
      E.Engine.set_fact eng "f" [ E.Value.VInt k ] (E.Value.VInt (k mod 3))
    end
  in
  let n = List.length ds.ds_inserts in
  let split = if n = 0 then 0 else ds.ds_split mod (n + 1) in
  let t0 = E.Database.timestamp db in
  List.iteri (fun i ins -> if i < split then insert ins) ds.ds_inserts;
  E.Database.bump_timestamp db;
  let t1 = E.Database.timestamp db in
  List.iteri (fun i ins -> if i >= split then insert ins) ds.ds_inserts;
  E.Database.bump_timestamp db;
  let t2 = E.Database.timestamp db in
  (db, [| t0; t1; t2 |])

(* The scenario's query as surface facts, plus the distinct pattern
   variables it binds (in first-use order; includes the binder "s" when
   ds_prim picks one). *)
let scenario_facts ds =
  let n_rels = List.length ds.ds_arities in
  let var i = E.Ast.Var (Printf.sprintf "x%d" i) in
  let expr_of = function `V i -> var i | `C c -> E.Ast.Lit (E.Value.VInt c) in
  let used = ref [] in
  let use s =
    List.iter (function `V i -> used := i :: !used | `C _ -> ()) s;
    s
  in
  let facts =
    List.map
      (fun (pick, specs) ->
        let pick = pick mod (n_rels + 1) in
        if pick < n_rels then begin
          let a = List.nth ds.ds_arities pick in
          let args = use (List.filteri (fun i _ -> i < a) specs) in
          E.Ast.Holds (E.Ast.Call (Printf.sprintf "r%d" pick, List.map expr_of args))
        end
        else
          match specs with
          | arg :: out :: _ ->
            let args = use [ arg; out ] in
            E.Ast.Eq
              (E.Ast.Call ("f", [ expr_of (List.nth args 0) ]), expr_of (List.nth args 1))
          | _ -> assert false)
      ds.ds_atoms
  in
  let prims, binder =
    match (ds.ds_prim, List.rev !used) with
    | 0, _ | _, [] -> ([], [])
    | 1, v :: _ ->
      (* binder: s is computed from a join variable *)
      ( [ E.Ast.Eq (E.Ast.Call ("+", [ var v; E.Ast.Lit (E.Value.VInt 1) ]), E.Ast.Var "s") ],
        [ E.Ast.Var "s" ] )
    | 2, v :: _ ->
      (* always-true guard *)
      ([ E.Ast.Eq (E.Ast.Call ("+", [ var v; E.Ast.Lit (E.Value.VInt 0) ]), var v) ], [])
    | _, v :: _ ->
      (* never-true guard: x + 1 = x *)
      ([ E.Ast.Eq (E.Ast.Call ("+", [ var v; E.Ast.Lit (E.Value.VInt 1) ]), var v) ], [])
  in
  let vars =
    List.fold_left (fun acc i -> if List.mem (var i) acc then acc else var i :: acc) []
      (List.rev !used)
    |> List.rev
  in
  (facts @ prims, vars @ binder)

(* The scenario's query compiled against [db]. *)
let scenario_query ds db =
  E.Compile.compile_query (compile_env db) (fst (scenario_facts ds))

(* One differential case: reference output vs the production join under
   every configuration we ship — interpreted and compiled, cached and
   uncached, fast paths on and off, the cost-model replan, and every
   variable ordering (sampled once the order grows past 4 variables).
   Interpreter and compiled evaluator share one cache, which doubles as a
   regression for the cache-key identity invariant: both sides must
   request (and correctly answer from) the same entries. *)
let check_diff ds ~delta =
  let db, stamps = build_scenario ds in
  match scenario_query ds db with
  | exception E.Compile.Unsat -> true
  | exception E.Compile.Error _ -> true
  | q ->
    let n_atoms = Array.length q.E.Compile.atoms in
    if n_atoms = 0 then true
    else begin
      let ranges =
        if not delta then Array.make n_atoms E.Join.all_rows
        else
          Array.init n_atoms (fun i ->
              match List.nth ds.ds_ranges (i mod List.length ds.ds_ranges) with
              | 3 -> { E.Join.lo = stamps.(1); hi = max_int }
              | 4 -> { E.Join.lo = stamps.(0); hi = stamps.(1) }
              | 5 -> { E.Join.lo = stamps.(1); hi = stamps.(2) }
              | _ -> E.Join.all_rows)
      in
      let expected = Ref_join.matches_multiset db q ~ranges in
      let agree ?cache ?fast_paths q' = join_multiset db ?cache ?fast_paths q' ~ranges = expected in
      let agree_compiled ?cache ?fast_paths q' =
        compiled_multiset db ?cache ?fast_paths q' ~ranges = expected
      in
      let cache = E.Join.new_cache () in
      let ok = ref (agree ~cache q) in
      (* a second pass answers from the cached structures *)
      ok := !ok && agree ~cache q;
      ok := !ok && agree ~fast_paths:false q;
      (* compiled evaluator, warming and then reusing the same cache *)
      ok := !ok && agree_compiled ~cache q;
      ok := !ok && agree_compiled ~cache q;
      ok := !ok && agree_compiled q;
      ok := !ok && agree_compiled ~fast_paths:false q;
      let cards =
        Array.map
          (fun (a : E.Compile.atom) ->
            match E.Database.find_func db a.E.Compile.a_func.E.Schema.name with
            | Some t ->
              let rows, distinct = E.Database.table_stats db t in
              { E.Compile.ac_rows = rows; ac_distinct = distinct }
            | None -> assert false)
          q.E.Compile.atoms
      in
      let replanned = E.Compile.replan q ~cards in
      ok := !ok && agree ~cache replanned;
      ok := !ok && agree_compiled ~cache replanned;
      (* past 4 join variables full enumeration explodes (120+ orders);
         reversing the chosen order still exercises a worst-case plan *)
      let orders =
        let base = Array.to_list q.E.Compile.order in
        if List.length base <= 4 then permutations base else [ base; List.rev base ]
      in
      List.iter
        (fun perm ->
          let q' = E.Compile.reorder q ~order:(Array.of_list perm) in
          ok := !ok && agree q' && agree ~fast_paths:false q' && agree_compiled q')
        orders;
      !ok
    end

let prop_diff_full_ranges =
  QCheck2.Test.make
    ~name:"differential: compiled == interpreted == reference (full ranges, all orderings)"
    ~count:350 gen_scenario (fun ds -> check_diff ds ~delta:false)

let prop_diff_delta_ranges =
  QCheck2.Test.make
    ~name:"differential: compiled == interpreted == reference (delta stamp windows)" ~count:350
    gen_scenario (fun ds -> check_diff ds ~delta:true)

(* Engine-level differential for the parallel phases: the scenario's
   query becomes a rule writing its bindings into [out] — and, with two
   or more variables, unioning sort members through [g2], so the staged
   apply path sees fresh-id defaults, unions and merge conflicts — then
   the whole engine runs at jobs 1, 2 and 4 and both the canonical dump
   and the run-report fingerprint (per-iteration row/class/match counts,
   stop reason, per-rule stats) must come out byte-identical — the
   tentpole's determinism contract, exercised over random schemas and
   primitives. Facts land in two batches with a run between, so the
   semi-naïve delta variants fan out across domains too. *)
let report_fingerprint (r : E.Engine.run_report) =
  ( List.map
      (fun (s : E.Engine.iteration_stat) ->
        (s.it_index, s.it_rows, s.it_classes, s.it_changed, s.it_matches, s.it_delta_rows))
      r.iterations,
    r.stop_reason,
    r.rule_stats )

let run_scenario_at_jobs ?node_limit ?memory_limit ?compiled_plans ds ~jobs =
  let n_rels = List.length ds.ds_arities in
  let facts, vars = scenario_facts ds in
  let eng = E.Engine.create ?compiled_plans () in
  let decls = Buffer.create 64 in
  List.iteri
    (fun i a ->
      Buffer.add_string decls
        (Printf.sprintf "(relation r%d (%s))\n" i
           (String.concat " " (List.init a (fun _ -> "i64")))))
    ds.ds_arities;
  Buffer.add_string decls "(function f (i64) i64)\n";
  Buffer.add_string decls "(sort M)\n(function g2 (i64) M)\n";
  Buffer.add_string decls
    (Printf.sprintf "(relation out (%s))\n"
       (String.concat " " (List.init (1 + List.length vars) (fun _ -> "i64"))));
  ignore (E.run_string eng (Buffer.contents decls));
  let union_actions =
    (* exercise parallel apply's union staging: merge the classes keyed by
       the first two bound variables (fresh g2 members on first touch) *)
    match vars with
    | v1 :: v2 :: _ -> [ E.Ast.Union (E.Ast.Call ("g2", [ v1 ]), E.Ast.Call ("g2", [ v2 ])) ]
    | _ -> []
  in
  E.Engine.add_rule eng
    {
      E.Ast.rule_name = Some "scenario";
      query = facts;
      actions =
        E.Ast.Do (E.Ast.Call ("out", E.Ast.Lit (E.Value.VInt 0) :: vars)) :: union_actions;
      ruleset = None;
    };
  let insert (pick, raw) =
    let pick = pick mod (n_rels + 1) in
    if pick < n_rels then begin
      let a = List.nth ds.ds_arities pick in
      let key = List.filteri (fun i _ -> i < a) raw |> List.map (fun v -> E.Value.VInt v) in
      E.Engine.set_fact eng (Printf.sprintf "r%d" pick) key E.Value.VUnit
    end
    else begin
      let k = List.hd raw in
      E.Engine.set_fact eng "f" [ E.Value.VInt k ] (E.Value.VInt (k mod 3))
    end
  in
  let n = List.length ds.ds_inserts in
  let split = if n = 0 then 0 else ds.ds_split mod (n + 1) in
  List.iteri (fun i ins -> if i < split then insert ins) ds.ds_inserts;
  let rep1 = E.Engine.run_iterations ?node_limit ?memory_limit ~jobs eng 2 in
  List.iteri (fun i ins -> if i >= split then insert ins) ds.ds_inserts;
  let rep2 = E.Engine.run_iterations ?node_limit ?memory_limit ~jobs eng 3 in
  (E.Serialize.dump_string eng, report_fingerprint rep1, report_fingerprint rep2)

let prop_jobs_differential =
  QCheck2.Test.make
    ~name:
      "differential: parallel search+apply+rebuild (jobs 2, 4; compiled and interpreted) \
       dumps+reports == serial"
    ~count:60 gen_scenario (fun ds ->
      match run_scenario_at_jobs ds ~jobs:1 with
      | exception E.Engine.Egglog_error _ -> true
      | serial ->
        List.for_all (fun jobs -> run_scenario_at_jobs ds ~jobs = serial) [ 2; 4 ]
        (* the interpreter (--no-compiled-plans) must reproduce the same
           dump and report fingerprints, serial and parallel *)
        && List.for_all
             (fun jobs -> run_scenario_at_jobs ~compiled_plans:false ds ~jobs = serial)
             [ 1; 4 ])

(* Same contract when a budget stops the run mid-way: node and memory
   limits are modeled deterministically, so the stop reason, the stopped
   iteration and the dump must be byte-identical at any jobs count. *)
let prop_jobs_differential_limits =
  QCheck2.Test.make
    ~name:"differential: budget stops (node/memory limit) identical at jobs 2, 4" ~count:30
    gen_scenario (fun ds ->
      List.for_all
        (fun (node_limit, memory_limit) ->
          match run_scenario_at_jobs ?node_limit ?memory_limit ds ~jobs:1 with
          | exception E.Engine.Egglog_error _ -> true
          | serial ->
            List.for_all
              (fun jobs -> run_scenario_at_jobs ?node_limit ?memory_limit ds ~jobs = serial)
              [ 2; 4 ])
        [ (Some 40, None); (None, Some 30_000) ])

(* Regression for the cache-key representation: two distinct table
   incarnations (original and a pre-mutation snapshot) can reach the same
   version counter with different contents. A key that identified tables by
   name+version — as the old concatenated-string key did — would serve the
   first incarnation's index for the second and return stale rows; the
   structured key carries Table.uid, so each incarnation gets its own
   entry. *)
let test_cache_key_incarnations () =
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation r (i64 i64)) (relation s (i64 i64))");
  let db = E.Engine.database eng in
  let set tbl a b = E.Engine.set_fact eng tbl [ E.Value.VInt a; E.Value.VInt b ] E.Value.VUnit in
  set "r" 1 2;
  set "s" 2 3;
  let q =
    E.Compile.compile_query (compile_env db)
      [
        E.Ast.Holds (E.Ast.Call ("r", [ E.Ast.Var "x"; E.Ast.Var "y" ]));
        E.Ast.Holds (E.Ast.Call ("s", [ E.Ast.Var "y"; E.Ast.Var "z" ]));
      ]
  in
  let ranges = [| E.Join.all_rows; E.Join.all_rows |] in
  let snapshot = E.Database.copy db in
  (* incarnation 1: s advances to version 2 with rows {(2,3),(2,4)} and the
     shared cache builds its structures against it *)
  set "s" 2 4;
  let cache = E.Join.new_cache () in
  let expect1 = Ref_join.matches_multiset db q ~ranges in
  Alcotest.(check int) "incarnation 1 has two matches" 2 (List.length expect1);
  Alcotest.(check (list string))
    "incarnation 1, fast path" expect1 (join_multiset db ~cache q ~ranges);
  Alcotest.(check (list string))
    "incarnation 1, trie join" expect1 (join_multiset db ~cache ~fast_paths:false q ~ranges);
  (* incarnation 2: the snapshot's s also reaches version 2, but with rows
     {(2,3),(2,5)} — the same cache must not resurrect incarnation 1 *)
  let s_snap =
    match E.Database.find_func snapshot (E.Symbol.intern "s") with
    | Some t -> t
    | None -> Alcotest.fail "no table s in snapshot"
  in
  E.Database.set snapshot s_snap [| E.Value.VInt 2; E.Value.VInt 5 |] E.Value.VUnit;
  let expect2 = Ref_join.matches_multiset snapshot q ~ranges in
  Alcotest.(check int) "incarnation 2 has two matches" 2 (List.length expect2);
  Alcotest.(check bool) "incarnations differ" true (expect1 <> expect2);
  Alcotest.(check (list string))
    "incarnation 2, fast path" expect2 (join_multiset snapshot ~cache q ~ranges);
  Alcotest.(check (list string))
    "incarnation 2, trie join" expect2
    (join_multiset snapshot ~cache ~fast_paths:false q ~ranges)

(* Companion regression: constants containing the old key format's
   delimiter characters must still produce distinct cache entries for
   distinct atoms sharing one cache. *)
let test_cache_key_structured_consts () =
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation g (String i64)) (relation h (i64))");
  let db = E.Engine.database eng in
  ignore
    (E.run_string eng
       {| (g "a;1=b" 1) (g "a" 2) (h 1) (h 2) |});
  let query const =
    E.Compile.compile_query (compile_env db)
      [
        E.Ast.Holds
          (E.Ast.Call ("g", [ E.Ast.Lit (E.Value.VStr (E.Symbol.intern const)); E.Ast.Var "x" ]));
        E.Ast.Holds (E.Ast.Call ("h", [ E.Ast.Var "x" ]));
      ]
  in
  let ranges = [| E.Join.all_rows; E.Join.all_rows |] in
  let cache = E.Join.new_cache () in
  Alcotest.(check (list string)) "quoted const" [ "1" ] (join_multiset db ~cache (query "a;1=b") ~ranges);
  Alcotest.(check (list string)) "plain const" [ "2" ] (join_multiset db ~cache (query "a") ~ranges);
  (* answered from the now-warm cache *)
  Alcotest.(check (list string)) "quoted const again" [ "1" ]
    (join_multiset db ~cache (query "a;1=b") ~ranges)

let () =
  Printf.printf "property-test seed: %d (override with EGGLOG_TEST_SEED=<n>)\n%!" test_seed;
  try
    Alcotest.run ~and_exit:false "engine-props"
    [
      ( "planner",
        [
          Alcotest.test_case "cartesian product" `Quick test_planner_handles_cartesian;
          Alcotest.test_case "triangle query" `Quick test_planner_shared_var_chain;
          Alcotest.test_case "nonlinear self join" `Quick test_self_join_nonlinear;
          Alcotest.test_case "cache key distinguishes incarnations" `Quick
            test_cache_key_incarnations;
          Alcotest.test_case "cache key structured constants" `Quick
            test_cache_key_structured_consts;
        ] );
      ( "differential",
        List.map to_alcotest
          [
            prop_diff_full_ranges;
            prop_diff_delta_ranges;
            prop_jobs_differential;
            prop_jobs_differential_limits;
          ] );
      ( "scheduling",
        [ Alcotest.test_case "backoff unbans" `Quick test_backoff_unbans ] );
      ( "primitives",
        [
          Alcotest.test_case "i64 algebra" `Quick test_i64_primitive_algebra;
          Alcotest.test_case "rational algebra" `Quick test_rational_algebra;
        ] );
      ( "properties",
        List.map to_alcotest
          [
            prop_extraction_sound_and_consistent;
            prop_push_pop_nesting;
            prop_run_is_idempotent_at_fixpoint;
          ] );
    ]
  with e ->
    Printf.eprintf "\nproperty failure: reproduce with EGGLOG_TEST_SEED=%d\n%!" test_seed;
    raise e
