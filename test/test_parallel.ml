(* The parallel search phase: pool mechanics, the determinism contract
   (dumps and reports byte-identical across jobs values), and domain-safe
   telemetry.

   The determinism stress runs a fig7-style workload — the math suite
   under the BackOff scheduler — because it exercises everything at once:
   many rules, semi-naïve delta variants, primitives, bans, and rebuilds
   between iterations. *)

module E = Egglog

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_empty () =
  let pool = E.Pool.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check (array int)) "empty batch" [||] (E.Pool.run pool (fun x -> x) [||]);
      Alcotest.(check (array int)) "single task" [| 42 |] (E.Pool.run pool (fun x -> x * 2) [| 21 |]))

let test_pool_input_order () =
  let pool = E.Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      let tasks = Array.init 257 (fun i -> i) in
      let expect = Array.map (fun i -> i * i) tasks in
      for _ = 1 to 5 do
        Alcotest.(check (array int)) "results land at their task index" expect
          (E.Pool.run pool (fun i -> i * i) tasks)
      done)

let test_pool_exception_propagates () =
  let pool = E.Pool.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      let f i = if i = 3 || i = 7 then failwith (Printf.sprintf "task %d" i) else i in
      (* lowest failing index wins, matching a serial loop's failure order *)
      (match E.Pool.run pool f (Array.init 10 (fun i -> i)) with
       | _ -> Alcotest.fail "expected the batch to raise"
       | exception Failure msg -> Alcotest.(check string) "lowest index's error" "task 3" msg);
      (* the pool survives a failed batch *)
      Alcotest.(check (array int)) "pool usable after failure" [| 0; 2; 4 |]
        (E.Pool.run pool (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_pool_nested_rejected () =
  let pool = E.Pool.create ~workers:1 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "not in a task outside" false (E.Pool.in_task ());
      let results =
        E.Pool.run pool
          (fun _ ->
            if not (E.Pool.in_task ()) then `No_task_flag
            else
              match E.Pool.run pool (fun x -> x) [| 1 |] with
              | _ -> `Nested_ran
              | exception Invalid_argument _ -> `Rejected)
          [| 0; 1; 2 |]
      in
      Array.iter
        (fun r ->
          Alcotest.(check bool) "nested run raises Invalid_argument inside a task" true
            (r = `Rejected))
        results)

(* ------------------------------------------------------------------ *)
(* Determinism stress: fig7-style workload across jobs values          *)
(* ------------------------------------------------------------------ *)

(* Everything in a run_report except wall-clock noise. *)
let report_fingerprint (r : E.Engine.run_report) =
  ( List.map
      (fun (s : E.Engine.iteration_stat) ->
        (s.it_index, s.it_rows, s.it_classes, s.it_changed, s.it_matches, s.it_delta_rows))
      r.iterations,
    r.stop_reason,
    r.rule_stats )

let math_run ~jobs ~iters =
  let eng = E.Engine.create ~scheduler:E.Engine.backoff_default ~jobs () in
  ignore (E.run_string eng (Math_suite.egglog_program ()));
  let report = E.Engine.run_iterations eng iters in
  (E.Serialize.dump_string eng, report)

let test_determinism_stress () =
  let iters = 5 in
  let serial_dump, serial_report = math_run ~jobs:1 ~iters in
  Alcotest.(check int) "serial report records jobs=1" 1 serial_report.E.Engine.jobs;
  Alcotest.(check bool) "workload is non-trivial" true (String.length serial_dump > 1000);
  let serial_fp = report_fingerprint serial_report in
  for rep = 1 to 10 do
    List.iter
      (fun jobs ->
        let dump, report = math_run ~jobs ~iters in
        let label what = Printf.sprintf "rep %d jobs %d: %s == serial" rep jobs what in
        Alcotest.(check bool) (label "dump bytes") true (dump = serial_dump);
        Alcotest.(check bool)
          (label "per-iteration and per-rule match counts")
          true
          (report_fingerprint report = serial_fp);
        Alcotest.(check int) "report records resolved jobs" jobs report.E.Engine.jobs)
      [ 2; 4; 8 ]
  done

let test_jobs_zero_resolves () =
  (* jobs 0 = one domain per core; still deterministic, report shows the
     resolved count *)
  let serial_dump, _ = math_run ~jobs:1 ~iters:3 in
  let dump, report = math_run ~jobs:0 ~iters:3 in
  Alcotest.(check bool) "jobs 0 dump == serial" true (dump = serial_dump);
  Alcotest.(check bool) "jobs 0 resolves to >= 1" true (report.E.Engine.jobs >= 1)

let test_negative_jobs_rejected () =
  (match E.Engine.create ~jobs:(-1) () with
   | _ -> Alcotest.fail "create ~jobs:(-1) should raise"
   | exception E.Egglog_error _ -> ());
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation r (i64)) (r 1)");
  match E.Engine.run_iterations ~jobs:(-3) eng 1 with
  | _ -> Alcotest.fail "run_iterations ~jobs:(-3) should raise"
  | exception E.Egglog_error _ -> ()

let test_jobs_keyword_roundtrip () =
  (* (run ... :jobs N) parses, runs, and survives the printer round-trip *)
  let eng = E.Engine.create () in
  let out =
    E.run_string eng
      {|
      (relation edge (i64 i64))
      (relation path (i64 i64))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
      (edge 1 2) (edge 2 3) (edge 3 4)
      (run 10 :jobs 4)
      (check (path 1 4))
    |}
  in
  ignore out;
  Alcotest.(check int) "transitive closure complete" 6 (E.Engine.table_size eng "path");
  (* rejected at parse time, like a malformed :node-limit *)
  (match E.run_string (E.Engine.create ()) "(run 1 :jobs -2)" with
   | _ -> Alcotest.fail "negative :jobs should be rejected"
   | exception E.Frontend.Syntax_error _ -> ());
  let printed =
    String.concat " " (List.map E.Frontend.command_to_string (E.Frontend.parse_program "(run 3 :jobs 2)"))
  in
  Alcotest.(check string) ":jobs survives the printer round-trip" printed
    (String.concat " " (List.map E.Frontend.command_to_string (E.Frontend.parse_program printed)))

(* ------------------------------------------------------------------ *)
(* Telemetry: sharded counters                                         *)
(* ------------------------------------------------------------------ *)

let test_sharded_counter_sum () =
  let pool = E.Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ();
      E.Pool.shutdown pool)
    (fun () ->
      E.Telemetry.reset ();
      E.Telemetry.enable ();
      let c = E.Telemetry.counter "test.sharded" in
      let n_tasks = 100 in
      (* every task bumps from whichever domain runs it; the snapshot must
         see the exact total regardless of how chunks were distributed *)
      ignore (E.Pool.run pool (fun i -> E.Telemetry.bump c (i + 1)) (Array.init n_tasks Fun.id));
      E.Telemetry.disable ();
      let snap = E.Telemetry.snapshot () in
      let value name = Option.value ~default:0 (List.assoc_opt name snap.E.Telemetry.sn_counters) in
      Alcotest.(check int) "shards sum to the serial total" (n_tasks * (n_tasks + 1) / 2)
        (value "test.sharded");
      Alcotest.(check int) "pool.tasks counted every task" n_tasks (value "pool.tasks"))

(* Counters whose totals are scheduling-independent: the engine does the
   same logical work at any jobs value, so these must match serial runs
   exactly. (Cache hit/miss/build counters legitimately differ — parallel
   variants build window structures privately instead of reusing a shared
   scratch entry.) *)
let stable_counters =
  [ "engine.iterations"; "engine.matches_applied"; "engine.tuples_inserted";
    "join.matches_yielded"; "db.unions"; "rebuild.rounds" ]

let test_engine_counters_match_serial () =
  let measure ~jobs =
    E.Telemetry.reset ();
    E.Telemetry.enable ();
    ignore (math_run ~jobs ~iters:4);
    E.Telemetry.disable ();
    let snap = E.Telemetry.snapshot () in
    List.map
      (fun name -> (name, Option.value ~default:0 (List.assoc_opt name snap.E.Telemetry.sn_counters)))
      stable_counters
  in
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ())
    (fun () ->
      let serial = measure ~jobs:1 in
      let parallel = measure ~jobs:4 in
      List.iter2
        (fun (name, a) (_, b) ->
          Alcotest.(check int) (Printf.sprintf "%s equal at jobs 1 and 4" name) a b;
          Alcotest.(check bool) (Printf.sprintf "%s is non-zero" name) true (a > 0))
        serial parallel)

(* ------------------------------------------------------------------ *)
(* Fresh symbol interning during parallel search                       *)
(* ------------------------------------------------------------------ *)

(* Rules whose primitives mint fresh strings (str-cat / to-string) while
   the search phase runs — under parallel search those interns happen on
   worker domains against thread-local speculative tables and get their
   real ids assigned in canonical merge order, so dumps (including sets of
   strings, which sort by symbol id) must be byte-identical at any jobs
   value. This was the documented caveat of the first parallel-search PR;
   it is now a hard guarantee. *)
let fresh_symbol_prog =
  {|
  (relation seed (i64))
  (function tag (i64) String)
  (function bag (i64) (Set String) :merge (set-union old new))
  (rule ((seed x))
        ((set (tag x) (str-cat "n-" (to-string x)))))
  (rule ((seed x) (seed y) (< x y))
        ((set (bag (+ x y))
              (set-insert (set-singleton (str-cat (to-string x) (to-string y)))
                          (str-cat "p-" (to-string (* x y)))))))
  (seed 1) (seed 2) (seed 3) (seed 4) (seed 5) (seed 6)
  (seed 7) (seed 8) (seed 9) (seed 10) (seed 11) (seed 12)
  (run 4)
  |}

let test_fresh_interning_deterministic () =
  let dump ~jobs =
    let eng = E.Engine.create ~jobs () in
    ignore (E.Engine.run_program eng (E.Frontend.parse_program fresh_symbol_prog));
    E.Serialize.dump_string eng
  in
  let serial = dump ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fresh-symbol dump at jobs %d == serial" jobs)
        serial (dump ~jobs))
    [ 2; 4; 0 ]

(* ------------------------------------------------------------------ *)
(* Merge storm: parallel rebuild vs serial vs a naive reference closure *)
(* ------------------------------------------------------------------ *)

(* A deterministic 48-bit LCG (drawing from the high bits — the low bits
   of a power-of-two LCG carry parity structure that would split the link
   graph into disjoint components) so the "random" graph is identical on
   every run and platform. *)
let make_lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 25214903917) + 11) land 0xFFFF_FFFF_FFFF;
    (!state lsr 16) mod bound

let storm_nodes = 700
let storm_links =
  let rand = make_lcg 0x5EED in
  List.init 900 (fun _ ->
      let a = rand storm_nodes in
      let b = rand storm_nodes in
      (a, b))

(* One constructor per linked node and a rule that unions across every
   link: the Mk table ends up with several hundred rows (enough to engage
   the sharded rebuild scan) and the union storm forces multi-round
   congruence repair. *)
let storm_prog =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "(datatype N (Mk i64))\n\
     (relation link (i64 i64))\n\
     (rule ((link x y)) ((union (Mk x) (Mk y))))\n";
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "(link %d %d)\n" a b))
    storm_links;
  Buffer.contents buf

(* Run the storm and capture everything the differential needs: final
   bytes, the report fingerprint, and the scheduling-independent rebuild
   round count (plus the gauges, for the jobs-4 assertions). *)
let storm_run ~jobs =
  E.Telemetry.reset ();
  E.Telemetry.enable ();
  let eng = E.Engine.create ~jobs () in
  ignore (E.run_string eng storm_prog);
  let report = E.Engine.run_iterations eng 3 in
  E.Telemetry.disable ();
  let snap = E.Telemetry.snapshot () in
  let counter name = List.assoc_opt name snap.E.Telemetry.sn_counters in
  (eng, E.Serialize.dump_string eng, report_fingerprint report, counter)

let test_merge_storm_rebuild () =
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ())
    (fun () ->
      let _, serial_dump, serial_fp, serial_counter = storm_run ~jobs:1 in
      let serial_rounds = Option.value ~default:0 (serial_counter "rebuild.rounds") in
      Alcotest.(check bool) "storm forces congruence repair" true (serial_rounds > 0);
      let eng4 =
        List.fold_left
          (fun _ jobs ->
            let eng, dump, fp, counter = storm_run ~jobs in
            let label what = Printf.sprintf "jobs %d: %s == serial" jobs what in
            Alcotest.(check bool) (label "dump bytes") true (dump = serial_dump);
            Alcotest.(check bool) (label "report fingerprint") true (fp = serial_fp);
            Alcotest.(check int) (label "rebuild round count") serial_rounds
              (Option.value ~default:0 (counter "rebuild.rounds"));
            eng)
          (E.Engine.create ())
          [ 2; 4 ]
      in
      (* Naive reference closure: a textbook union-find over the raw i64
         labels, fed the same link list. Every equality it derives must
         hold in the engine, and every inequality must fail to check. *)
      let parent = Array.init storm_nodes Fun.id in
      let rec find i = if parent.(i) = i then i else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end in
      let touched = Array.make storm_nodes false in
      List.iter
        (fun (a, b) ->
          touched.(a) <- true;
          touched.(b) <- true;
          let ra = find a and rb = find b in
          if ra <> rb then parent.(ra) <- rb)
        storm_links;
      let rand = make_lcg 0xCAFE in
      let eq_probes = ref 0 and neq_probes = ref 0 in
      for _ = 1 to 300 do
        let a = rand storm_nodes in
        let b = rand storm_nodes in
        if touched.(a) && touched.(b) && a <> b then
          if find a = find b then begin
            incr eq_probes;
            ignore (E.run_string eng4 (Printf.sprintf "(check (= (Mk %d) (Mk %d)))" a b))
          end
          else begin
            incr neq_probes;
            ignore (E.run_string eng4 (Printf.sprintf "(fail (check (= (Mk %d) (Mk %d))))" a b))
          end
      done;
      Alcotest.(check bool) "probed equalities" true (!eq_probes > 10);
      Alcotest.(check bool) "probed inequalities" true (!neq_probes > 10))

let test_apply_rebuild_domains_gauge () =
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ())
    (fun () ->
      let _, _, _, counter = storm_run ~jobs:4 in
      let get name =
        match counter name with
        | Some n -> n
        | None -> Alcotest.failf "%s missing from snapshot" name
      in
      Alcotest.(check int) "apply.domains_used records resolved jobs" 4 (get "apply.domains_used");
      Alcotest.(check int) "rebuild.domains_used records resolved jobs" 4
        (get "rebuild.domains_used");
      Alcotest.(check bool) "staged traces actually committed" true
        (get "apply.staged_commits" > 0))

(* ------------------------------------------------------------------ *)
(* Fault injection on the staged path: transaction rollback             *)
(* ------------------------------------------------------------------ *)

(* Two rules that both match in the first iteration, with enough total
   matches to engage the staged parallel path. Crashing at the second
   occurrence of engine.apply.staged dies with rule 1's traces already
   committed and rule 2's still pending — exactly the mid-apply window the
   transaction must erase. *)
let staged_fault_prog =
  {|
  (datatype N (Mk i64))
  (relation edge (i64 i64))
  (relation back (i64 i64))
  (rule ((edge x y)) ((union (Mk x) (Mk y))))
  (rule ((back x y)) ((back y x) (union (Mk x) (Mk y))))
  (edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5) (edge 5 6) (edge 6 7)
  (back 10 11) (back 12 13) (back 14 15) (back 16 17)
  |}

let test_staged_fault_rollback () =
  Fun.protect
    ~finally:(fun () -> E.Fault.disarm ())
    (fun () ->
      let eng = E.Engine.create ~jobs:4 () in
      ignore (E.run_string eng staged_fault_prog);
      let before = E.Serialize.dump_string eng in
      (* Sanity: the point fires on this workload at all. *)
      E.Fault.arm_counting ();
      ignore (E.Engine.with_transaction eng (fun () -> E.Engine.run_iterations eng 2));
      let hits =
        Option.value ~default:0 (List.assoc_opt "engine.apply.staged" (E.Fault.hit_counts ()))
      in
      Alcotest.(check bool) "staged fault point fires at jobs 4" true (hits >= 2);
      E.Fault.disarm ();
      let after_clean = E.Serialize.dump_string eng in
      Alcotest.(check bool) "counting run committed (not a no-op workload)" true
        (after_clean <> before);
      (* Fresh engine, same program: crash mid-apply inside a transaction. *)
      let eng = E.Engine.create ~jobs:4 () in
      ignore (E.run_string eng staged_fault_prog);
      let before = E.Serialize.dump_string eng in
      E.Fault.arm_nth "engine.apply.staged" 2;
      (match
         E.Engine.with_transaction eng (fun () -> E.Engine.run_iterations eng 2)
       with
       | _ -> Alcotest.fail "expected the injected crash to propagate"
       | exception E.Fault.Crash _ -> ());
      E.Fault.disarm ();
      Alcotest.(check bool) "rollback restores the pre-command bytes" true
        (E.Serialize.dump_string eng = before);
      (* The engine is still usable and converges to the same state a
         crash-free run reaches. *)
      ignore (E.Engine.run_iterations eng 2);
      Alcotest.(check bool) "post-rollback rerun matches the crash-free run" true
        (E.Serialize.dump_string eng = after_clean))

let test_domains_used_gauge () =
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ())
    (fun () ->
      E.Telemetry.reset ();
      E.Telemetry.enable ();
      ignore (math_run ~jobs:4 ~iters:2);
      E.Telemetry.disable ();
      let snap = E.Telemetry.snapshot () in
      match List.assoc_opt "search.domains_used" snap.E.Telemetry.sn_counters with
      | Some n -> Alcotest.(check int) "gauge records the resolved jobs" 4 n
      | None -> Alcotest.fail "search.domains_used missing from snapshot")

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "empty and single batches" `Quick test_pool_empty;
          Alcotest.test_case "results in input order" `Quick test_pool_input_order;
          Alcotest.test_case "exception propagates, pool survives" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "nested run rejected" `Quick test_pool_nested_rejected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig7-style stress: jobs 2/4/8 == serial (10 reps)" `Slow
            test_determinism_stress;
          Alcotest.test_case "jobs 0 resolves to core count" `Quick test_jobs_zero_resolves;
          Alcotest.test_case "negative jobs rejected" `Quick test_negative_jobs_rejected;
          Alcotest.test_case ":jobs keyword parses, runs, round-trips" `Quick
            test_jobs_keyword_roundtrip;
          Alcotest.test_case "fresh symbol interning deterministic across jobs" `Quick
            test_fresh_interning_deterministic;
          Alcotest.test_case "merge storm: parallel rebuild == serial == naive closure" `Slow
            test_merge_storm_rebuild;
          Alcotest.test_case "staged-apply fault rolls back byte-identically" `Quick
            test_staged_fault_rollback;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "sharded counters sum exactly" `Quick test_sharded_counter_sum;
          Alcotest.test_case "scheduling-independent counters match serial" `Quick
            test_engine_counters_match_serial;
          Alcotest.test_case "search.domains_used gauge" `Quick test_domains_used_gauge;
          Alcotest.test_case "apply/rebuild domains_used gauges + staged commits" `Quick
            test_apply_rebuild_domains_gauge;
        ] );
    ]
