(* The parallel search phase: pool mechanics, the determinism contract
   (dumps and reports byte-identical across jobs values), and domain-safe
   telemetry.

   The determinism stress runs a fig7-style workload — the math suite
   under the BackOff scheduler — because it exercises everything at once:
   many rules, semi-naïve delta variants, primitives, bans, and rebuilds
   between iterations. *)

module E = Egglog

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_empty () =
  let pool = E.Pool.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check (array int)) "empty batch" [||] (E.Pool.run pool (fun x -> x) [||]);
      Alcotest.(check (array int)) "single task" [| 42 |] (E.Pool.run pool (fun x -> x * 2) [| 21 |]))

let test_pool_input_order () =
  let pool = E.Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      let tasks = Array.init 257 (fun i -> i) in
      let expect = Array.map (fun i -> i * i) tasks in
      for _ = 1 to 5 do
        Alcotest.(check (array int)) "results land at their task index" expect
          (E.Pool.run pool (fun i -> i * i) tasks)
      done)

let test_pool_exception_propagates () =
  let pool = E.Pool.create ~workers:2 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      let f i = if i = 3 || i = 7 then failwith (Printf.sprintf "task %d" i) else i in
      (* lowest failing index wins, matching a serial loop's failure order *)
      (match E.Pool.run pool f (Array.init 10 (fun i -> i)) with
       | _ -> Alcotest.fail "expected the batch to raise"
       | exception Failure msg -> Alcotest.(check string) "lowest index's error" "task 3" msg);
      (* the pool survives a failed batch *)
      Alcotest.(check (array int)) "pool usable after failure" [| 0; 2; 4 |]
        (E.Pool.run pool (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_pool_nested_rejected () =
  let pool = E.Pool.create ~workers:1 in
  Fun.protect
    ~finally:(fun () -> E.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "not in a task outside" false (E.Pool.in_task ());
      let results =
        E.Pool.run pool
          (fun _ ->
            if not (E.Pool.in_task ()) then `No_task_flag
            else
              match E.Pool.run pool (fun x -> x) [| 1 |] with
              | _ -> `Nested_ran
              | exception Invalid_argument _ -> `Rejected)
          [| 0; 1; 2 |]
      in
      Array.iter
        (fun r ->
          Alcotest.(check bool) "nested run raises Invalid_argument inside a task" true
            (r = `Rejected))
        results)

(* ------------------------------------------------------------------ *)
(* Determinism stress: fig7-style workload across jobs values          *)
(* ------------------------------------------------------------------ *)

(* Everything in a run_report except wall-clock noise. *)
let report_fingerprint (r : E.Engine.run_report) =
  ( List.map
      (fun (s : E.Engine.iteration_stat) ->
        (s.it_index, s.it_rows, s.it_classes, s.it_changed, s.it_matches, s.it_delta_rows))
      r.iterations,
    r.stop_reason,
    r.rule_stats )

let math_run ~jobs ~iters =
  let eng = E.Engine.create ~scheduler:E.Engine.backoff_default ~jobs () in
  ignore (E.run_string eng (Math_suite.egglog_program ()));
  let report = E.Engine.run_iterations eng iters in
  (E.Serialize.dump_string eng, report)

let test_determinism_stress () =
  let iters = 5 in
  let serial_dump, serial_report = math_run ~jobs:1 ~iters in
  Alcotest.(check int) "serial report records jobs=1" 1 serial_report.E.Engine.jobs;
  Alcotest.(check bool) "workload is non-trivial" true (String.length serial_dump > 1000);
  let serial_fp = report_fingerprint serial_report in
  for rep = 1 to 10 do
    List.iter
      (fun jobs ->
        let dump, report = math_run ~jobs ~iters in
        let label what = Printf.sprintf "rep %d jobs %d: %s == serial" rep jobs what in
        Alcotest.(check bool) (label "dump bytes") true (dump = serial_dump);
        Alcotest.(check bool)
          (label "per-iteration and per-rule match counts")
          true
          (report_fingerprint report = serial_fp);
        Alcotest.(check int) "report records resolved jobs" jobs report.E.Engine.jobs)
      [ 2; 4; 8 ]
  done

let test_jobs_zero_resolves () =
  (* jobs 0 = one domain per core; still deterministic, report shows the
     resolved count *)
  let serial_dump, _ = math_run ~jobs:1 ~iters:3 in
  let dump, report = math_run ~jobs:0 ~iters:3 in
  Alcotest.(check bool) "jobs 0 dump == serial" true (dump = serial_dump);
  Alcotest.(check bool) "jobs 0 resolves to >= 1" true (report.E.Engine.jobs >= 1)

let test_negative_jobs_rejected () =
  (match E.Engine.create ~jobs:(-1) () with
   | _ -> Alcotest.fail "create ~jobs:(-1) should raise"
   | exception E.Egglog_error _ -> ());
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation r (i64)) (r 1)");
  match E.Engine.run_iterations ~jobs:(-3) eng 1 with
  | _ -> Alcotest.fail "run_iterations ~jobs:(-3) should raise"
  | exception E.Egglog_error _ -> ()

let test_jobs_keyword_roundtrip () =
  (* (run ... :jobs N) parses, runs, and survives the printer round-trip *)
  let eng = E.Engine.create () in
  let out =
    E.run_string eng
      {|
      (relation edge (i64 i64))
      (relation path (i64 i64))
      (rule ((edge x y)) ((path x y)))
      (rule ((path x y) (edge y z)) ((path x z)))
      (edge 1 2) (edge 2 3) (edge 3 4)
      (run 10 :jobs 4)
      (check (path 1 4))
    |}
  in
  ignore out;
  Alcotest.(check int) "transitive closure complete" 6 (E.Engine.table_size eng "path");
  (* rejected at parse time, like a malformed :node-limit *)
  (match E.run_string (E.Engine.create ()) "(run 1 :jobs -2)" with
   | _ -> Alcotest.fail "negative :jobs should be rejected"
   | exception E.Frontend.Syntax_error _ -> ());
  let printed =
    String.concat " " (List.map E.Frontend.command_to_string (E.Frontend.parse_program "(run 3 :jobs 2)"))
  in
  Alcotest.(check string) ":jobs survives the printer round-trip" printed
    (String.concat " " (List.map E.Frontend.command_to_string (E.Frontend.parse_program printed)))

(* ------------------------------------------------------------------ *)
(* Telemetry: sharded counters                                         *)
(* ------------------------------------------------------------------ *)

let test_sharded_counter_sum () =
  let pool = E.Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ();
      E.Pool.shutdown pool)
    (fun () ->
      E.Telemetry.reset ();
      E.Telemetry.enable ();
      let c = E.Telemetry.counter "test.sharded" in
      let n_tasks = 100 in
      (* every task bumps from whichever domain runs it; the snapshot must
         see the exact total regardless of how chunks were distributed *)
      ignore (E.Pool.run pool (fun i -> E.Telemetry.bump c (i + 1)) (Array.init n_tasks Fun.id));
      E.Telemetry.disable ();
      let snap = E.Telemetry.snapshot () in
      let value name = Option.value ~default:0 (List.assoc_opt name snap.E.Telemetry.sn_counters) in
      Alcotest.(check int) "shards sum to the serial total" (n_tasks * (n_tasks + 1) / 2)
        (value "test.sharded");
      Alcotest.(check int) "pool.tasks counted every task" n_tasks (value "pool.tasks"))

(* Counters whose totals are scheduling-independent: the engine does the
   same logical work at any jobs value, so these must match serial runs
   exactly. (Cache hit/miss/build counters legitimately differ — parallel
   variants build window structures privately instead of reusing a shared
   scratch entry.) *)
let stable_counters =
  [ "engine.iterations"; "engine.matches_applied"; "engine.tuples_inserted";
    "join.matches_yielded"; "db.unions"; "rebuild.rounds" ]

let test_engine_counters_match_serial () =
  let measure ~jobs =
    E.Telemetry.reset ();
    E.Telemetry.enable ();
    ignore (math_run ~jobs ~iters:4);
    E.Telemetry.disable ();
    let snap = E.Telemetry.snapshot () in
    List.map
      (fun name -> (name, Option.value ~default:0 (List.assoc_opt name snap.E.Telemetry.sn_counters)))
      stable_counters
  in
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ())
    (fun () ->
      let serial = measure ~jobs:1 in
      let parallel = measure ~jobs:4 in
      List.iter2
        (fun (name, a) (_, b) ->
          Alcotest.(check int) (Printf.sprintf "%s equal at jobs 1 and 4" name) a b;
          Alcotest.(check bool) (Printf.sprintf "%s is non-zero" name) true (a > 0))
        serial parallel)

(* ------------------------------------------------------------------ *)
(* Fresh symbol interning during parallel search                       *)
(* ------------------------------------------------------------------ *)

(* Rules whose primitives mint fresh strings (str-cat / to-string) while
   the search phase runs — under parallel search those interns happen on
   worker domains against thread-local speculative tables and get their
   real ids assigned in canonical merge order, so dumps (including sets of
   strings, which sort by symbol id) must be byte-identical at any jobs
   value. This was the documented caveat of the first parallel-search PR;
   it is now a hard guarantee. *)
let fresh_symbol_prog =
  {|
  (relation seed (i64))
  (function tag (i64) String)
  (function bag (i64) (Set String) :merge (set-union old new))
  (rule ((seed x))
        ((set (tag x) (str-cat "n-" (to-string x)))))
  (rule ((seed x) (seed y) (< x y))
        ((set (bag (+ x y))
              (set-insert (set-singleton (str-cat (to-string x) (to-string y)))
                          (str-cat "p-" (to-string (* x y)))))))
  (seed 1) (seed 2) (seed 3) (seed 4) (seed 5) (seed 6)
  (seed 7) (seed 8) (seed 9) (seed 10) (seed 11) (seed 12)
  (run 4)
  |}

let test_fresh_interning_deterministic () =
  let dump ~jobs =
    let eng = E.Engine.create ~jobs () in
    ignore (E.Engine.run_program eng (E.Frontend.parse_program fresh_symbol_prog));
    E.Serialize.dump_string eng
  in
  let serial = dump ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fresh-symbol dump at jobs %d == serial" jobs)
        serial (dump ~jobs))
    [ 2; 4; 0 ]

let test_domains_used_gauge () =
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ())
    (fun () ->
      E.Telemetry.reset ();
      E.Telemetry.enable ();
      ignore (math_run ~jobs:4 ~iters:2);
      E.Telemetry.disable ();
      let snap = E.Telemetry.snapshot () in
      match List.assoc_opt "search.domains_used" snap.E.Telemetry.sn_counters with
      | Some n -> Alcotest.(check int) "gauge records the resolved jobs" 4 n
      | None -> Alcotest.fail "search.domains_used missing from snapshot")

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "empty and single batches" `Quick test_pool_empty;
          Alcotest.test_case "results in input order" `Quick test_pool_input_order;
          Alcotest.test_case "exception propagates, pool survives" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "nested run rejected" `Quick test_pool_nested_rejected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig7-style stress: jobs 2/4/8 == serial (10 reps)" `Slow
            test_determinism_stress;
          Alcotest.test_case "jobs 0 resolves to core count" `Quick test_jobs_zero_resolves;
          Alcotest.test_case "negative jobs rejected" `Quick test_negative_jobs_rejected;
          Alcotest.test_case ":jobs keyword parses, runs, round-trips" `Quick
            test_jobs_keyword_roundtrip;
          Alcotest.test_case "fresh symbol interning deterministic across jobs" `Quick
            test_fresh_interning_deterministic;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "sharded counters sum exactly" `Quick test_sharded_counter_sum;
          Alcotest.test_case "scheduling-independent counters match serial" `Quick
            test_engine_counters_match_serial;
          Alcotest.test_case "search.domains_used gauge" `Quick test_domains_used_gauge;
        ] );
    ]
