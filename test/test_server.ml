(* The daemon, in-process: a real Serve loop on its own domain, spoken to
   over a real Unix socket. The properties under test are the robustness
   contract of docs/SERVER.md: every failure is a typed reply (never a dead
   connection), failed/over-budget requests roll back to byte-identical
   session state, sessions are isolated from each other's abuse, overload
   sheds with a retry hint instead of stalling, drain is graceful, and
   durable sessions survive restarts and crashes at the server's fault
   points with exactly the journaled prefix. *)

module E = Egglog
module S = Egglog_server
module Json = S.Protocol.Json

(* ---- scratch dirs ---- *)

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "egglog_server_%d_%d" (Unix.getpid ()) !ctr)
    in
    Unix.mkdir d 0o755;
    d

let rec cleanup_dir d =
  Array.iter
    (fun f ->
      let p = Filename.concat d f in
      if Sys.is_directory p then cleanup_dir p else try Sys.remove p with Sys_error _ -> ())
    (try Sys.readdir d with Sys_error _ -> [||]);
  try Unix.rmdir d with Unix.Unix_error _ -> ()

(* ---- server lifecycle ---- *)

type server = {
  srv : S.Serve.t;
  dom : [ `Clean | `Crash of string ] Domain.t;
  sock : string;
}

let start ?(tune = fun c -> c) dir =
  let sock = Filename.concat dir "s.sock" in
  let cfg =
    tune
      {
        S.Serve.default_config with
        socket_path = Some sock;
        data_dir = Some (Filename.concat dir "data");
      }
  in
  let srv = S.Serve.create cfg in
  let dom =
    Domain.spawn (fun () ->
        match S.Serve.run srv with
        | () -> `Clean
        | exception E.Fault.Crash p -> `Crash p)
  in
  { srv; dom; sock }

let stop sv =
  S.Serve.request_drain sv.srv;
  Domain.join sv.dom

let with_server ?tune dir f =
  let sv = start ?tune dir in
  Fun.protect
    ~finally:(fun () -> if not (S.Serve.draining sv.srv) then ignore (stop sv))
    (fun () -> f sv)

(* ---- client ---- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect sv =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sv.sock);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()
let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c = Json.parse (input_line c.ic)
let obj fields = Json.to_string (Json.Obj fields)
let rpc c fields = send_line c (obj fields); recv c

let run_req ?(id = 1) ~session program =
  [
    ("id", Json.Int id);
    ("op", Json.Str "run");
    ("session", Json.Str session);
    ("program", Json.Str program);
  ]

let is_ok reply = Json.member "ok" reply = Some (Json.Bool true)

let err_kind reply =
  match Json.member "error" reply with
  | Some err -> (
    match Json.member "kind" err with Some (Json.Str s) -> s | _ -> "<no kind>")
  | None -> "<no error>"

let retry_after reply =
  match Json.member "error" reply with
  | Some err -> (
    match Json.member "retry_after_ms" err with Some (Json.Int ms) -> Some ms | _ -> None)
  | None -> None

let check_ok what reply =
  if not (is_ok reply) then
    Alcotest.failf "%s: expected ok, got %s (%s)" what (err_kind reply) (Json.to_string reply)

let check_err what kind reply =
  if is_ok reply then Alcotest.failf "%s: expected %s error, got ok" what kind;
  Alcotest.(check string) what kind (err_kind reply)

let dump_of c session =
  let reply =
    rpc c [ ("id", Json.Int 99); ("op", Json.Str "dump"); ("session", Json.Str session) ]
  in
  check_ok "dump" reply;
  match Json.member "dump" reply with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail "dump reply carries no dump"

(* The serial single-session reference: the same program through a plain
   engine. Server sessions must dump byte-identical to this. *)
let reference_dump programs =
  let eng = E.Engine.create () in
  List.iter
    (fun p -> ignore (E.Engine.run_program eng (E.Frontend.parse_program p)))
    programs;
  E.Serialize.dump_string eng

let prog_base =
  "(relation edge (i64 i64)) (relation path (i64 i64))\n\
   (rule ((edge x y)) ((path x y)))\n\
   (rule ((path x y) (edge y z)) ((path x z)))\n\
   (edge 1 2) (edge 2 3) (edge 3 4) (run 5)"

let prog_more = "(edge 4 5) (run 5)"

(* ---- basic protocol ---- *)

let test_basics () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      check_ok "ping" (rpc c [ ("id", Json.Int 1); ("op", Json.Str "ping") ]);
      let hello = rpc c [ ("id", Json.Int 2); ("op", Json.Str "hello") ] in
      check_ok "hello" hello;
      (match Json.member "limits" hello with
       | Some (Json.Obj _) -> ()
       | _ -> Alcotest.fail "hello carries no limits object");
      check_ok "open"
        (rpc c
           [ ("id", Json.Int 3); ("op", Json.Str "open-session"); ("session", Json.Str "a") ]);
      check_ok "run" (rpc c (run_req ~id:4 ~session:"a" prog_base));
      let stats =
        rpc c [ ("id", Json.Int 5); ("op", Json.Str "stats"); ("session", Json.Str "a") ]
      in
      check_ok "stats" stats;
      (match Json.member "rows" stats with
       | Some (Json.Int n) when n > 0 -> ()
       | j ->
         Alcotest.failf "stats rows missing or zero: %s"
           (match j with Some j -> Json.to_string j | None -> "absent"));
      Alcotest.(check string) "dump matches the serial reference" (reference_dump [ prog_base ])
        (dump_of c "a");
      let metrics = rpc c [ ("id", Json.Int 6); ("op", Json.Str "metrics") ] in
      check_ok "metrics" metrics;
      check_ok "close"
        (rpc c
           [ ("id", Json.Int 7); ("op", Json.Str "close-session"); ("session", Json.Str "a") ]);
      close_client c);
  cleanup_dir dir

let test_error_taxonomy () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      (* each failure is a typed reply, and the connection survives it *)
      send_line c "this is not json";
      check_err "junk frame" "malformed-frame" (recv c);
      send_line c "[1,2,3]";
      check_err "non-object frame" "malformed-frame" (recv c);
      check_err "missing op" "malformed-frame" (rpc c [ ("id", Json.Int 1) ]);
      check_err "unknown op" "unsupported"
        (rpc c [ ("id", Json.Int 2); ("op", Json.Str "nope") ]);
      check_err "missing session" "malformed-frame"
        (rpc c [ ("id", Json.Int 3); ("op", Json.Str "dump") ]);
      check_err "path-traversal session name" "bad-session"
        (rpc c [ ("id", Json.Int 4); ("op", Json.Str "dump"); ("session", Json.Str "../evil") ]);
      check_err "ill-typed field" "malformed-frame"
        (rpc c [ ("id", Json.Int 5); ("op", Json.Str "dump"); ("session", Json.Int 7) ]);
      check_err "parse error" "parse-error" (rpc c (run_req ~id:6 ~session:"a" "(unclosed"));
      check_err "engine error" "engine-error"
        (rpc c (run_req ~id:7 ~session:"a" "(undefined-thing 1)"));
      (* the reply echoes the request id, including string ids *)
      let r = rpc c [ ("id", Json.Str "xyz"); ("op", Json.Str "ping") ] in
      (match Json.member "id" r with
       | Some (Json.Str "xyz") -> ()
       | _ -> Alcotest.failf "id not echoed: %s" (Json.to_string r));
      check_ok "connection still works after the gauntlet"
        (rpc c [ ("id", Json.Int 8); ("op", Json.Str "ping") ]);
      close_client c);
  cleanup_dir dir

let test_too_large_frame () =
  let dir = fresh_dir () in
  with_server ~tune:(fun c -> { c with S.Serve.max_input_bytes = 256 }) dir (fun sv ->
      let c = connect sv in
      let big = String.make 1024 'x' in
      send_line c (obj [ ("id", Json.Int 1); ("op", Json.Str "ping"); ("pad", Json.Str big) ]);
      check_err "oversized frame" "too-large" (recv c);
      check_ok "connection survives" (rpc c [ ("id", Json.Int 2); ("op", Json.Str "ping") ]);
      (* an unterminated monster is refused without buffering it all *)
      output_string c.oc (String.make 4096 'y');
      flush c.oc;
      check_err "unterminated oversized frame" "too-large" (recv c);
      output_string c.oc (String.make 512 'z');
      output_char c.oc '\n';
      flush c.oc;
      check_ok "skip-to-newline resynchronizes"
        (rpc c [ ("id", Json.Int 3); ("op", Json.Str "ping") ]);
      close_client c);
  cleanup_dir dir

(* ---- rollback and isolation ---- *)

let test_failed_request_rolls_back () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      check_ok "seed" (rpc c (run_req ~id:1 ~session:"a" prog_base));
      let before = dump_of c "a" in
      (* fails midway: first command runs, second errors — all rolled back *)
      check_err "multi-command failure" "engine-error"
        (rpc c (run_req ~id:2 ~session:"a" "(edge 7 8) (run 2) (boom)"));
      Alcotest.(check string) "session unchanged after failed request" before (dump_of c "a");
      Alcotest.(check string) "still the serial reference" (reference_dump [ prog_base ])
        (dump_of c "a");
      close_client c);
  cleanup_dir dir

let test_budget_rejection_rolls_back () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      check_ok "seed" (rpc c (run_req ~id:1 ~session:"a" prog_base));
      let before = dump_of c "a" in
      let bomb =
        "(datatype T (L) (N T T)) (rule ((= x (N a b))) ((N x x))) (N (L) (L)) (run 100000)"
      in
      let r =
        rpc c (("node_limit", Json.Int 300) :: run_req ~id:2 ~session:"a" bomb)
      in
      check_err "node bomb" "budget" r;
      Alcotest.(check string) "rolled back byte-identically" before (dump_of c "a");
      close_client c);
  cleanup_dir dir

let test_quota_rejection () =
  let dir = fresh_dir () in
  with_server ~tune:(fun c -> { c with S.Serve.session_node_quota = Some 6 }) dir (fun sv ->
      let c = connect sv in
      check_ok "under quota"
        (rpc c (run_req ~id:1 ~session:"a" "(relation r (i64)) (r 1) (r 2)"));
      let before = dump_of c "a" in
      check_err "over quota" "quota"
        (rpc c (run_req ~id:2 ~session:"a" "(r 3) (r 4) (r 5) (r 6) (r 7)"));
      Alcotest.(check string) "quota breach rolled back" before (dump_of c "a");
      close_client c);
  cleanup_dir dir

let test_memory_limit_budget_stop () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      check_ok "seed" (rpc c (run_req ~id:1 ~session:"a" prog_base));
      let before = dump_of c "a" in
      (* multi-rule explosion: banning the biggest byte-grower (tier 2)
         cannot freeze it, so the hard modeled-byte stop must trip *)
      let bomb =
        "(datatype Math (Num i64) (Add Math Math))\n\
         (birewrite (Add (Add a b) c) (Add a (Add b c)))\n\
         (rewrite (Add a b) (Add b a))\n\
         (rule ((= e (Num n))) ((Num (+ n 1)) (Num (* n 2))))\n\
         (define seed (Add (Num 1) (Add (Num 2) (Num 3))))\n\
         (run 100000)"
      in
      let r = rpc c (("memory_limit", Json.Int 50_000) :: run_req ~id:2 ~session:"a" bomb) in
      check_err "memory bomb stops as a budget reject" "budget" r;
      Alcotest.(check string) "rolled back byte-identically" before (dump_of c "a");
      close_client c);
  cleanup_dir dir

let test_memory_quota_rejection () =
  let dir = fresh_dir () in
  with_server ~tune:(fun c -> { c with S.Serve.session_memory_quota = Some 3_000 }) dir
    (fun sv ->
      let c = connect sv in
      check_ok "under quota"
        (rpc c (run_req ~id:1 ~session:"a" "(relation r (i64)) (r 1) (r 2)"));
      let before = dump_of c "a" in
      (* plain inserts, no (run): growth the run budget cannot catch — the
         retained-footprint quota must *)
      let flood =
        String.concat " " (List.init 60 (fun i -> Printf.sprintf "(r %d)" (i + 10)))
      in
      check_err "over quota" "quota" (rpc c (run_req ~id:2 ~session:"a" flood));
      Alcotest.(check string) "quota breach rolled back" before (dump_of c "a");
      close_client c);
  cleanup_dir dir

(* Satellite: a real allocation failure mid-request must be a typed reply
   and a rollback, never a dead daemon. Injected via the server.oom fault
   point (raises Out_of_memory inside the request transaction). *)
let test_oom_is_survivable () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      check_ok "seed" (rpc c (run_req ~id:1 ~session:"a" prog_base));
      let before = dump_of c "a" in
      E.Fault.arm_nth "server.oom" 1;
      let r = rpc c (run_req ~id:2 ~session:"a" "(edge 7 8) (run 2)") in
      E.Fault.disarm ();
      check_err "oom is a typed reply" "memory" r;
      Alcotest.(check string) "session rolled back byte-identically" before (dump_of c "a");
      check_ok "daemon alive" (rpc c [ ("id", Json.Int 3); ("op", Json.Str "ping") ]);
      check_ok "and the session still serves" (rpc c (run_req ~id:4 ~session:"a" prog_more));
      close_client c);
  cleanup_dir dir

let test_headroom_evicts_then_sheds () =
  let dir = fresh_dir () in
  with_server ~tune:(fun c -> { c with S.Serve.memory_headroom = Some 500; retry_after_ms = 25 })
    dir (fun sv ->
      let c = connect sv in
      (* a durable session holding real state: the eviction path must
         checkpoint it, not lose it *)
      check_ok "durable victim"
        (rpc c
           [
             ("id", Json.Int 1);
             ("op", Json.Str "open-session");
             ("session", Json.Str "victim");
             ("durable", Json.Bool true);
           ]);
      check_ok "victim holds state" (rpc c (run_req ~id:2 ~session:"victim" prog_base));
      (* a request for a fresh session: over headroom, the largest-idle
         session (victim) is checkpointed and evicted to make room *)
      check_ok "fresh request admitted after eviction"
        (rpc c (run_req ~id:3 ~session:"fresh" "(relation tiny (i64)) (tiny 1)"));
      (* the victim recovers from its checkpoint byte-identically *)
      Alcotest.(check string) "evicted session checkpointed, not lost"
        (reference_dump [ prog_base ]) (dump_of c "victim");
      (* now make one session itself exceed the cap: with no other victim to
         shed, admission refuses with a retry hint instead of growing *)
      ignore
        (rpc c
           [ ("id", Json.Int 4); ("op", Json.Str "close-session"); ("session", Json.Str "victim") ]);
      let flood =
        "(relation big (i64)) "
        ^ String.concat " " (List.init 60 (fun i -> Printf.sprintf "(big %d)" i))
      in
      check_ok "fill the requester itself" (rpc c (run_req ~id:5 ~session:"fresh" flood));
      let r = rpc c (run_req ~id:6 ~session:"fresh" "(tiny 2)") in
      check_err "no victim left: overload" "overload" r;
      Alcotest.(check (option int)) "retry hint" (Some 25) (retry_after r);
      close_client c);
  cleanup_dir dir

let test_memory_pressure_fault () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      check_ok "seed" (rpc c (run_req ~id:1 ~session:"a" prog_base));
      (* the fault forces a zero headroom cap for one request: the requester
         is its own footprint, so admission sheds it *)
      E.Fault.arm_nth "server.memory.pressure" 1;
      let r = rpc c (run_req ~id:2 ~session:"a" "(edge 9 10)") in
      E.Fault.disarm ();
      check_err "forced pressure sheds" "overload" r;
      check_ok "back to normal afterwards" (rpc c (run_req ~id:3 ~session:"a" "(edge 9 10)"));
      close_client c);
  cleanup_dir dir

let test_metrics_memory_gauges () =
  let dir = fresh_dir () in
  with_server ~tune:(fun c -> { c with S.Serve.session_memory_quota = Some 1_000_000 }) dir
    (fun sv ->
      let c = connect sv in
      check_ok "populate" (rpc c (run_req ~id:1 ~session:"a" prog_base));
      let m = rpc c [ ("id", Json.Int 2); ("op", Json.Str "metrics") ] in
      check_ok "metrics" m;
      let mem =
        match Json.member "memory" m with
        | Some (Json.Obj _ as o) -> o
        | _ -> Alcotest.fail "metrics reply carries no memory object"
      in
      let int_field what name =
        match Json.member name mem with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "memory.%s missing (%s)" name what
      in
      Alcotest.(check bool) "modeled bytes reflect the live session" true
        (int_field "modeled" "modeled_bytes" > 0);
      Alcotest.(check int) "one live session" 1 (int_field "live" "live_sessions");
      Alcotest.(check int) "quota echoed" 1_000_000
        (int_field "quota" "session_memory_quota");
      Alcotest.(check bool) "gc backstop present" true
        (int_field "gc" "top_heap_bytes" > 0);
      close_client c);
  cleanup_dir dir

let test_deadline () =
  (* a fake clock that leaps 100s per reading: the first between-command
     deadline check already sees the budget spent *)
  let ticks = Atomic.make 0 in
  E.Telemetry.set_clock (fun () -> float_of_int (Atomic.fetch_and_add ticks 1) *. 100.0);
  Fun.protect ~finally:E.Telemetry.use_default_clock (fun () ->
      let dir = fresh_dir () in
      with_server dir (fun sv ->
          let c = connect sv in
          check_err "deadline between commands" "deadline"
            (rpc c (run_req ~id:1 ~session:"a" "(relation r (i64)) (r 1)"));
          check_ok "session empty but alive"
            (rpc c [ ("id", Json.Int 2); ("op", Json.Str "stats"); ("session", Json.Str "a") ]);
          close_client c);
      cleanup_dir dir)

let abusive_lines session =
  [
    "garbage that is not a frame";
    obj [ ("id", Json.Int 90); ("op", Json.Str "bogus") ];
    obj (run_req ~id:91 ~session "(((((");
    obj (run_req ~id:92 ~session "(undefined 1 2 3)");
    ("node_limit", Json.Int 200)
    :: run_req ~id:93 ~session
         "(datatype T (L) (N T T)) (rule ((= x (N a b))) ((N x x))) (N (L) (L)) (run 100000)"
    |> obj;
    obj [ ("id", Json.Int 94); ("op", Json.Str "dump"); ("session", Json.Str "../../etc") ];
  ]

let test_session_isolation () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let good = connect sv in
      check_ok "good session" (rpc good (run_req ~id:1 ~session:"good" prog_base));
      let before = dump_of good "good" in
      (* a second connection hammers its own session with every class of
         bad input; each gets a reply, none is ok *)
      let evil = connect sv in
      List.iter
        (fun line ->
          send_line evil line;
          let r = recv evil in
          if is_ok r then Alcotest.failf "abusive input accepted: %s" line)
        (abusive_lines "evil");
      close_client evil;
      (* the survivor session is byte-for-byte unaffected *)
      Alcotest.(check string) "good session byte-identical after abuse" before
        (dump_of good "good");
      Alcotest.(check string) "and still the serial reference"
        (reference_dump [ prog_base ]) (dump_of good "good");
      close_client good);
  cleanup_dir dir

let test_overload_sheds () =
  let dir = fresh_dir () in
  with_server ~tune:(fun c -> { c with S.Serve.queue_limit = 1; retry_after_ms = 25 }) dir
    (fun sv ->
      let c = connect sv in
      let n = 6 in
      (* one write, many frames: they hit admission together *)
      for i = 1 to n do
        output_string c.oc (obj (run_req ~id:i ~session:"a" "(relation q (i64)) (q 1)"));
        output_char c.oc '\n'
      done;
      flush c.oc;
      let replies = List.init n (fun _ -> recv c) in
      let oks = List.filter is_ok replies in
      let sheds = List.filter (fun r -> not (is_ok r)) replies in
      Alcotest.(check int) "every request answered" n (List.length replies);
      Alcotest.(check bool) "some executed" true (List.length oks >= 1);
      Alcotest.(check bool) "some shed" true (List.length sheds >= 1);
      List.iter
        (fun r ->
          Alcotest.(check string) "shed kind" "overload" (err_kind r);
          Alcotest.(check (option int)) "retry hint" (Some 25) (retry_after r))
        sheds;
      close_client c);
  cleanup_dir dir

(* ---- drain and durability ---- *)

let test_graceful_drain () =
  let dir = fresh_dir () in
  let sv = start dir in
  let c = connect sv in
  check_ok "durable session"
    (rpc c
       [
         ("id", Json.Int 1);
         ("op", Json.Str "open-session");
         ("session", Json.Str "d");
         ("durable", Json.Bool true);
       ]);
  check_ok "journaled work" (rpc c (run_req ~id:2 ~session:"d" prog_base));
  (match stop sv with
   | `Clean -> ()
   | `Crash p -> Alcotest.failf "drain crashed at %s" p);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists sv.sock);
  close_client c;
  (* the journaled session comes back byte-identical *)
  with_server dir (fun sv2 ->
      let c2 = connect sv2 in
      Alcotest.(check string) "recovered == serial reference" (reference_dump [ prog_base ])
        (dump_of c2 "d");
      close_client c2);
  cleanup_dir dir

let test_durable_upgrade_and_restart () =
  let dir = fresh_dir () in
  let sv = start dir in
  let c = connect sv in
  (* ephemeral first, then upgraded mid-life: the attach checkpoint must
     capture the pre-upgrade state *)
  check_ok "ephemeral work" (rpc c (run_req ~id:1 ~session:"u" prog_base));
  check_ok "upgrade"
    (rpc c
       [
         ("id", Json.Int 2);
         ("op", Json.Str "open-session");
         ("session", Json.Str "u");
         ("durable", Json.Bool true);
       ]);
  check_ok "post-upgrade work" (rpc c (run_req ~id:3 ~session:"u" prog_more));
  ignore (stop sv);
  close_client c;
  with_server dir (fun sv2 ->
      let c2 = connect sv2 in
      Alcotest.(check string) "upgrade + tail recovered"
        (reference_dump [ prog_base; prog_more ])
        (dump_of c2 "u");
      close_client c2);
  cleanup_dir dir

let crash_and_recover ~point ~expect_programs () =
  let dir = fresh_dir () in
  let sv = start dir in
  let c = connect sv in
  check_ok "durable session"
    (rpc c
       [
         ("id", Json.Int 1);
         ("op", Json.Str "open-session");
         ("session", Json.Str "d");
         ("durable", Json.Bool true);
       ]);
  check_ok "first request" (rpc c (run_req ~id:2 ~session:"d" prog_base));
  (* armed only now: the next server-side hit is the second request's *)
  E.Fault.arm_nth point 1;
  send_line c (obj (run_req ~id:3 ~session:"d" prog_more));
  (match Domain.join sv.dom with
   | `Crash p -> Alcotest.(check string) "crashed at the armed point" point p
   | `Clean -> Alcotest.failf "server did not crash at %s" point);
  E.Fault.disarm ();
  close_client c;
  with_server dir (fun sv2 ->
      let c2 = connect sv2 in
      Alcotest.(check string)
        (Printf.sprintf "recovery after crash at %s" point)
        (reference_dump expect_programs) (dump_of c2 "d");
      close_client c2);
  cleanup_dir dir

let test_crash_before_journal () =
  (* committed in memory, never journaled: recovery has only request 1 *)
  crash_and_recover ~point:"server.request.executed" ~expect_programs:[ prog_base ] ()

let test_crash_after_journal () =
  (* journaled before the reply: recovery has both requests, the client
     just never heard the ack *)
  crash_and_recover ~point:"server.request.journaled"
    ~expect_programs:[ prog_base; prog_more ] ()

(* ---- reply-path faults ---- *)

let test_reply_drop_is_survivable () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c1 = connect sv in
      check_ok "before" (rpc c1 [ ("id", Json.Int 1); ("op", Json.Str "ping") ]);
      E.Fault.arm_nth "server.reply.drop" 1;
      send_line c1 (obj [ ("id", Json.Int 2); ("op", Json.Str "ping") ]);
      (* half a reply, then hangup: we read garbage or EOF, never a hang *)
      (match input_line c1.ic with
       | _ -> ()
       | exception End_of_file -> ());
      E.Fault.disarm ();
      close_client c1;
      let c2 = connect sv in
      check_ok "daemon survived the drop" (rpc c2 [ ("id", Json.Int 3); ("op", Json.Str "ping") ]);
      close_client c2);
  cleanup_dir dir

let test_reply_slow_still_delivers () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      E.Fault.arm_nth "server.reply.slow" 1;
      let r = rpc c [ ("id", Json.Int 1); ("op", Json.Str "ping") ] in
      E.Fault.disarm ();
      check_ok "dribbled reply arrives whole" r;
      check_ok "and the next is normal" (rpc c [ ("id", Json.Int 2); ("op", Json.Str "ping") ]);
      close_client c);
  cleanup_dir dir

let test_idle_eviction () =
  let dir = fresh_dir () in
  with_server ~tune:(fun c -> { c with S.Serve.idle_timeout_s = Some 0.05 }) dir (fun sv ->
      let c = connect sv in
      check_ok "populate" (rpc c (run_req ~id:1 ~session:"tmp" "(relation r (i64)) (r 1)"));
      Unix.sleepf 1.3;
      (* the sweep evicted the ephemeral session; the name now opens fresh *)
      let stats =
        rpc c [ ("id", Json.Int 2); ("op", Json.Str "stats"); ("session", Json.Str "tmp") ]
      in
      check_ok "fresh session" stats;
      (match Json.member "rows" stats with
       | Some (Json.Int 0) -> ()
       | j ->
         Alcotest.failf "expected empty recreated session, rows=%s"
           (match j with Some j -> Json.to_string j | None -> "absent"));
      close_client c);
  cleanup_dir dir

(* ---- observability ---- *)

(* The flight recorder and the private session histograms only capture
   while telemetry is enabled; scope that state per test. *)
let with_telemetry f =
  E.Telemetry.reset ();
  (* configure (not just clear): the daemon's crash path turns the
     recorder off, and a prior test may have crashed *)
  E.Telemetry.flightrec_configure ~capacity:512;
  E.Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      E.Telemetry.disable ();
      E.Telemetry.reset ();
      E.Telemetry.flightrec_configure ~capacity:512)
    f

let trace_id_of reply =
  match Json.member "trace_id" reply with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "reply carries no trace_id: %s" (Json.to_string reply)

let test_trace_ids_in_replies () =
  let dir = fresh_dir () in
  with_server dir (fun sv ->
      let c = connect sv in
      let r1 = rpc c [ ("id", Json.Int 1); ("op", Json.Str "ping") ] in
      let r2 = rpc c (run_req ~id:2 ~session:"a" "(relation r (i64)) (r 1)") in
      check_ok "ping" r1;
      check_ok "run" r2;
      Alcotest.(check bool) "distinct trace ids" true (trace_id_of r1 <> trace_id_of r2);
      (* error replies are tagged too *)
      let r3 = rpc c (run_req ~id:3 ~session:"a" "(oops") in
      Alcotest.(check bool) "error reply tagged" true (not (is_ok r3));
      Alcotest.(check bool) "error trace id set" true (String.length (trace_id_of r3) > 0);
      close_client c);
  cleanup_dir dir

let session_entry m name =
  match Json.member "sessions" m with
  | Some sessions -> (
    match Json.member name sessions with
    | Some entry -> entry
    | None -> Alcotest.failf "metrics reply lacks session %s" name)
  | None -> Alcotest.fail "metrics reply lacks sessions"

let session_int m name field =
  match Json.member field (session_entry m name) with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "sessions.%s.%s missing" name field

let latency_count m name =
  match Json.member "latency" (session_entry m name) with
  | Some lat -> (
    match Json.member "count" lat with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.failf "sessions.%s.latency.count missing" name)
  | None -> Alcotest.failf "sessions.%s.latency missing" name

(* Regression: the metrics reply used to report only the global telemetry
   registry, so one session's activity polluted every session's numbers.
   Per-session stats must come from session-local state only. *)
let test_metrics_per_session_isolation () =
  let dir = fresh_dir () in
  with_telemetry (fun () ->
      with_server dir (fun sv ->
          let c = connect sv in
          check_ok "a runs once" (rpc c (run_req ~id:1 ~session:"a" prog_base));
          let m1 = rpc c [ ("id", Json.Int 2); ("op", Json.Str "metrics") ] in
          check_ok "metrics" m1;
          Alcotest.(check int) "a requests" 1 (session_int m1 "a" "requests");
          Alcotest.(check int) "a latency count" 1 (latency_count m1 "a");
          (* b works hard; a's numbers must not move at all *)
          check_ok "b run 1" (rpc c (run_req ~id:3 ~session:"b" prog_base));
          check_ok "b run 2" (rpc c (run_req ~id:4 ~session:"b" prog_more));
          let m2 = rpc c [ ("id", Json.Int 5); ("op", Json.Str "metrics") ] in
          check_ok "metrics again" m2;
          Alcotest.(check int) "b requests" 2 (session_int m2 "b" "requests");
          Alcotest.(check int) "b latency count" 2 (latency_count m2 "b");
          Alcotest.(check string) "a's entry is byte-identical"
            (Json.to_string (session_entry m1 "a"))
            (Json.to_string (session_entry m2 "a"));
          close_client c));
  cleanup_dir dir

(* Minimal text-exposition validation: every non-comment line is
   name{labels} value with a well-formed metric name and parseable value. *)
let validate_prometheus text =
  List.iter
    (fun line ->
      if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "# ") then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "prometheus line lacks a value: %S" line
        | Some i ->
          let name = String.sub line 0 i in
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          (match float_of_string_opt value with
           | Some _ -> ()
           | None -> Alcotest.failf "unparseable sample value in %S" line);
          (match String.index_opt name '{' with
           | Some _ when name.[String.length name - 1] <> '}' ->
             Alcotest.failf "unbalanced label braces in %S" line
           | _ -> ());
          let base =
            match String.index_opt name '{' with
            | Some j -> String.sub name 0 j
            | None -> name
          in
          if base = "" then Alcotest.failf "empty metric name in %S" line;
          String.iteri
            (fun k ch ->
              let ok =
                (ch >= 'a' && ch <= 'z')
                || (ch >= 'A' && ch <= 'Z')
                || ch = '_' || ch = ':'
                || (k > 0 && ch >= '0' && ch <= '9')
              in
              if not ok then Alcotest.failf "bad metric name %S" base)
            base
      end)
    (String.split_on_char '\n' text)

let test_metrics_prometheus () =
  let dir = fresh_dir () in
  with_telemetry (fun () ->
      with_server dir (fun sv ->
          let c = connect sv in
          check_ok "populate" (rpc c (run_req ~id:1 ~session:"a" prog_base));
          let m =
            rpc c
              [
                ("id", Json.Int 2);
                ("op", Json.Str "metrics");
                ("format", Json.Str "prometheus");
              ]
          in
          check_ok "metrics" m;
          let text =
            match Json.member "prometheus" m with
            | Some (Json.Str s) -> s
            | _ -> Alcotest.fail "reply carries no prometheus text"
          in
          validate_prometheus text;
          let contains sub =
            let n = String.length text and m = String.length sub in
            let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "server gauges present" true
            (contains "egglog_server_live_sessions 1");
          Alcotest.(check bool) "per-session counter present" true
            (contains "egglog_session_requests_total{session=\"a\"} 1");
          Alcotest.(check bool) "request histogram present" true
            (contains "egglog_server_request_s_bucket");
          (* unknown format is a typed error, not a dead connection *)
          check_err "bad format" "malformed-frame"
            (rpc c
               [
                 ("id", Json.Int 3);
                 ("op", Json.Str "metrics");
                 ("format", Json.Str "xml");
               ]);
          close_client c));
  cleanup_dir dir

let test_dump_flightrec_op () =
  let dir = fresh_dir () in
  with_telemetry (fun () ->
      with_server dir (fun sv ->
          let c = connect sv in
          let r = rpc c (run_req ~id:1 ~session:"a" prog_base) in
          check_ok "run" r;
          let tid = trace_id_of r in
          let d = rpc c [ ("id", Json.Int 2); ("op", Json.Str "dump-flightrec") ] in
          check_ok "dump-flightrec" d;
          let events =
            match Json.member "events" d with
            | Some (Json.List l) -> l
            | _ -> Alcotest.fail "reply carries no events"
          in
          Alcotest.(check bool) "recorder captured the run" true (List.length events > 0);
          Alcotest.(check bool) "tail carries the run's trace id" true
            (List.exists (fun e -> Json.member "tid" e = Some (Json.Str tid)) events);
          (match Json.member "path" d with
           | Some (Json.Str p) ->
             Alcotest.(check bool) "artifact written under the data dir" true
               (Sys.file_exists p)
           | _ -> Alcotest.fail "no artifact path despite a data dir");
          close_client c));
  cleanup_dir dir

let test_slow_log () =
  let dir = fresh_dir () in
  with_telemetry (fun () ->
      with_server ~tune:(fun c -> { c with S.Serve.slow_log_ms = Some 0 }) dir (fun sv ->
          let c = connect sv in
          check_ok "run" (rpc c (run_req ~id:1 ~session:"a" prog_base));
          check_ok "ping" (rpc c [ ("id", Json.Int 2); ("op", Json.Str "ping") ]);
          close_client c);
      let path = Filename.concat (Filename.concat dir "data") "slowlog.jsonl" in
      Alcotest.(check bool) "slowlog written" true (Sys.file_exists path);
      let entries =
        List.map Json.parse (In_channel.with_open_text path In_channel.input_lines)
      in
      Alcotest.(check bool) "threshold 0 logs every request" true
        (List.length entries >= 2);
      let first = List.hd entries in
      (match Json.member "op" first with
       | Some (Json.Str "run") -> ()
       | j ->
         Alcotest.failf "first entry is not the run: %s"
           (match j with Some j -> Json.to_string j | None -> "<absent>"));
      (match Json.member "program" first with
       | Some (Json.Str p) -> Alcotest.(check string) "program captured" prog_base p
       | _ -> Alcotest.fail "run entry lacks the program");
      (match Json.member "phases" first with
       | Some (Json.Obj _) -> ()
       | _ -> Alcotest.fail "run entry lacks the phase breakdown");
      (match Json.member "trace_id" first with
       | Some (Json.Str _) -> ()
       | _ -> Alcotest.fail "entry lacks a trace id");
      (match Json.member "flightrec_tail" first with
       | Some (Json.List (_ :: _)) -> ()
       | _ -> Alcotest.fail "entry lacks the flight-recorder tail"));
  cleanup_dir dir

(* A --fault crash must leave a parseable flight-recorder artifact whose
   spans balance and whose tail carries the crashing request's trace id. *)
let test_crash_leaves_flightrec_artifact () =
  let dir = fresh_dir () in
  with_telemetry (fun () ->
      let sv = start dir in
      let c = connect sv in
      check_ok "durable session"
        (rpc c
           [
             ("id", Json.Int 1);
             ("op", Json.Str "open-session");
             ("session", Json.Str "d");
             ("durable", Json.Bool true);
           ]);
      let r = rpc c (run_req ~id:2 ~session:"d" prog_base) in
      check_ok "first request" r;
      (* trace ids are sequential, so the crashing request's id is the
         successor of the last acknowledged one *)
      let crash_tid =
        let last = trace_id_of r in
        Printf.sprintf "t-%06d"
          (1 + int_of_string (String.sub last 2 (String.length last - 2)))
      in
      E.Fault.arm_nth "server.request.executed" 1;
      send_line c (obj (run_req ~id:3 ~session:"d" prog_more));
      (match Domain.join sv.dom with
       | `Crash p -> Alcotest.(check string) "crashed at the armed point"
                       "server.request.executed" p
       | `Clean -> Alcotest.fail "server did not crash");
      E.Fault.disarm ();
      close_client c;
      let data = Filename.concat dir "data" in
      let artifacts =
        Array.to_list (Sys.readdir data)
        |> List.filter (String.starts_with ~prefix:"flightrec-")
      in
      (match artifacts with
       | [ artifact ] ->
         let events =
           List.map Json.parse
             (In_channel.with_open_text (Filename.concat data artifact)
                In_channel.input_lines)
         in
         Alcotest.(check bool) "artifact is non-empty" true (events <> []);
         let begins = ref 0 and ends = ref 0 in
         List.iter
           (fun e ->
             match Json.member "ev" e with
             | Some (Json.Str "b") -> incr begins
             | Some (Json.Str "e") -> incr ends
             | _ -> ())
           events;
         Alcotest.(check int) "spans balance" !begins !ends;
         Alcotest.(check bool) "tail carries the crashing trace id" true
           (List.exists
              (fun e -> Json.member "tid" e = Some (Json.Str crash_tid))
              events)
       | _ ->
         Alcotest.failf "expected exactly one flightrec artifact, found %d"
           (List.length artifacts)));
  cleanup_dir dir

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
          Alcotest.test_case "too-large frames" `Quick test_too_large_frame;
        ] );
      ( "containment",
        [
          Alcotest.test_case "failed request rolls back" `Quick test_failed_request_rolls_back;
          Alcotest.test_case "budget rejection rolls back" `Quick
            test_budget_rejection_rolls_back;
          Alcotest.test_case "quota rejection" `Quick test_quota_rejection;
          Alcotest.test_case "deadline rejection" `Quick test_deadline;
          Alcotest.test_case "memory limit stops as a budget reject" `Quick
            test_memory_limit_budget_stop;
          Alcotest.test_case "memory quota rejection" `Quick test_memory_quota_rejection;
          Alcotest.test_case "mid-request oom is survivable" `Quick test_oom_is_survivable;
          Alcotest.test_case "headroom evicts largest, then sheds" `Quick
            test_headroom_evicts_then_sheds;
          Alcotest.test_case "forced memory pressure fault" `Quick test_memory_pressure_fault;
          Alcotest.test_case "metrics report memory gauges" `Quick test_metrics_memory_gauges;
          Alcotest.test_case "session isolation under abuse" `Quick test_session_isolation;
          Alcotest.test_case "overload sheds with retry-after" `Quick test_overload_sheds;
        ] );
      ( "durability",
        [
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
          Alcotest.test_case "durable upgrade and restart" `Quick
            test_durable_upgrade_and_restart;
          Alcotest.test_case "crash before journal loses the request" `Quick
            test_crash_before_journal;
          Alcotest.test_case "crash after journal keeps the request" `Quick
            test_crash_after_journal;
        ] );
      ( "reply-faults",
        [
          Alcotest.test_case "mid-reply drop is survivable" `Quick
            test_reply_drop_is_survivable;
          Alcotest.test_case "slow dribble still delivers" `Quick
            test_reply_slow_still_delivers;
          Alcotest.test_case "idle eviction" `Quick test_idle_eviction;
        ] );
      ( "observability",
        [
          Alcotest.test_case "replies carry trace ids" `Quick test_trace_ids_in_replies;
          Alcotest.test_case "per-session metrics are isolated" `Quick
            test_metrics_per_session_isolation;
          Alcotest.test_case "prometheus exposition" `Quick test_metrics_prometheus;
          Alcotest.test_case "dump-flightrec on demand" `Quick test_dump_flightrec_op;
          Alcotest.test_case "slow-request log" `Quick test_slow_log;
          Alcotest.test_case "crash leaves a flightrec artifact" `Quick
            test_crash_leaves_flightrec_artifact;
        ] );
    ]
