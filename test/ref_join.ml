(* A deliberately naive reference implementation of conjunctive-query
   evaluation: enumerate every combination of rows (one per atom, honoring
   each atom's stamp window), bind variables with backtracking, then run the
   primitives to a fixpoint. No tries, no indexes, no variable ordering —
   nothing shared with [Join] beyond the query representation — so the
   differential properties in test_engine_props compare two genuinely
   independent evaluators. *)

module E = Egglog

let in_range (range : E.Join.stamp_range) stamp = stamp >= range.E.Join.lo && stamp < range.E.Join.hi

(* All matches of [q] against [db], one callback per binding (a fresh array
   indexed like [q.var_names]). [ranges] gives each atom's stamp window. *)
let search (db : E.Database.t) (q : E.Compile.cquery) ~(ranges : E.Join.stamp_range array)
    callback =
  let n_atoms = Array.length q.E.Compile.atoms in
  if Array.length ranges <> n_atoms then invalid_arg "Ref_join.search: ranges arity mismatch";
  (* Materialize each atom's candidate rows as full cell vectors (key
     columns then the output). *)
  let rows =
    Array.init n_atoms (fun i ->
        let atom = q.E.Compile.atoms.(i) in
        let table =
          match E.Database.find_func db atom.E.Compile.a_func.E.Schema.name with
          | Some t -> t
          | None -> failwith "Ref_join.search: no table for atom"
        in
        let acc = ref [] in
        E.Table.iter
          (fun key row ->
            if in_range ranges.(i) row.E.Table.stamp then
              acc := Array.append key [| row.E.Table.value |] :: !acc)
          table;
        List.rev !acc)
  in
  let env : E.Value.t option array = Array.make q.E.Compile.n_vars None in
  let prims = List.concat (Array.to_list q.E.Compile.schedule) in
  (* After the atoms bound everything they cover, evaluate primitives to a
     fixpoint: an application whose inputs are all bound either binds its
     output (if unbound) or checks it. Order-independent by construction. *)
  let run_prims env2 =
    let ready (p : E.Compile.prim_app) =
      Array.for_all
        (function E.Compile.A_const _ -> true | E.Compile.A_var v -> env2.(v) <> None)
        p.E.Compile.p_args
    in
    let apply (p : E.Compile.prim_app) =
      let args =
        Array.map
          (function E.Compile.A_const c -> c | E.Compile.A_var v -> Option.get env2.(v))
          p.E.Compile.p_args
      in
      match p.E.Compile.p_prim.E.Primitives.impl args with
      | None -> false
      | Some result -> (
        match p.E.Compile.p_out with
        | E.Compile.A_const c -> E.Value.equal c result
        | E.Compile.A_var v -> (
          match env2.(v) with
          | Some existing -> E.Value.equal existing result
          | None ->
            env2.(v) <- Some result;
            true))
    in
    let rec loop remaining =
      match List.partition ready remaining with
      | [], [] -> true
      | [], _ :: _ -> failwith "Ref_join.search: primitive inputs never became bound"
      | todo, later -> List.for_all apply todo && loop later
    in
    loop prims
  in
  let emit () =
    let env2 = Array.copy env in
    if run_prims env2 then
      callback
        (Array.mapi
           (fun i o ->
             match o with
             | Some v -> v
             | None -> failwith ("Ref_join.search: unbound variable " ^ q.E.Compile.var_names.(i)))
           env2)
  in
  (* Try to unify atom [i]'s pattern with the cell vector, recording fresh
     bindings for undo. *)
  let rec assign i =
    if i = n_atoms then emit ()
    else begin
      let atom = q.E.Compile.atoms.(i) in
      List.iter
        (fun (cells : E.Value.t array) ->
          let bound_here = ref [] in
          let ok = ref true in
          Array.iteri
            (fun p arg ->
              if !ok then
                match arg with
                | E.Compile.A_const c -> if not (E.Value.equal c cells.(p)) then ok := false
                | E.Compile.A_var v -> (
                  match env.(v) with
                  | Some existing -> if not (E.Value.equal existing cells.(p)) then ok := false
                  | None ->
                    env.(v) <- Some cells.(p);
                    bound_here := v :: !bound_here))
            atom.E.Compile.a_args;
          if !ok then assign (i + 1);
          List.iter (fun v -> env.(v) <- None) !bound_here)
        rows.(i)
    end
  in
  assign 0

(* Matches rendered as a sorted multiset of strings — the canonical form the
   differential properties compare. *)
let matches_multiset db q ~ranges =
  let acc = ref [] in
  search db q ~ranges (fun binding ->
      acc :=
        String.concat "," (Array.to_list (Array.map E.Value.to_string binding)) :: !acc);
  List.sort compare !acc
