(* The telemetry subsystem: deterministic fake clock, span begin/end
   balance (including across exceptions), counter exactness on a program
   whose match counts are derivable by hand, JSONL round-trips through the
   JSON printer/parser, and the fully disabled path recording nothing. *)

module E = Egglog
module T = Egglog.Telemetry
module J = T.Json

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Every test starts from a clean slate and leaves one behind: the module
   state is global, exactly like Fault's. *)
let fresh () =
  T.disable ();
  T.reset ();
  T.use_default_clock ()

(* A clock that advances one second per reading. *)
let install_ticker () =
  let t = ref 0.0 in
  T.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let with_sink f =
  let events = ref [] in
  T.enable ~sink:(fun line -> events := line :: !events) ();
  f ();
  T.disable ();
  List.rev_map J.parse !events

let field name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "event %s lacks field %s" (J.to_string j) name

let str_field name j =
  match field name j with
  | J.Str s -> s
  | _ -> Alcotest.failf "field %s is not a string in %s" name (J.to_string j)

let int_field name j =
  match field name j with
  | J.Int n -> n
  | _ -> Alcotest.failf "field %s is not an int in %s" name (J.to_string j)

(* ---- fake clock ---- *)

let test_fake_clock () =
  fresh ();
  install_ticker ();
  (* disabled timed_span reads the clock exactly twice *)
  let dt, v = T.timed_span "t" (fun () -> 41 + 1) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check (float 1e-9)) "duration is one tick" 1.0 dt;
  (* now() keeps ticking deterministically *)
  let a = T.now () and b = T.now () in
  Alcotest.(check (float 1e-9)) "one tick apart" 1.0 (b -. a);
  fresh ()

(* ---- span nesting and balance ---- *)

let test_span_balance () =
  fresh ();
  install_ticker ();
  let events =
    with_sink (fun () ->
        T.span "outer" (fun () ->
            T.span "inner" (fun () -> ());
            (try T.span "boom" (fun () -> raise Exit) with Exit -> ())))
  in
  let sig_of e = (str_field "ev" e, str_field "name" e, int_field "depth" e) in
  Alcotest.(check (list (triple string string int)))
    "b/e pairing and depth"
    [
      ("b", "outer", 0);
      ("b", "inner", 1);
      ("e", "inner", 1);
      ("b", "boom", 1);
      ("e", "boom", 1);  (* closed even though the body raised *)
      ("e", "outer", 0);
    ]
    (List.map sig_of events);
  (* timestamps never go backwards *)
  let ts =
    List.map (fun e -> match field "t" e with J.Float t -> t | J.Int t -> float_of_int t | _ -> nan) events
  in
  let rec sorted = function a :: (b :: _ as rest) -> a <= b && sorted rest | _ -> true in
  Alcotest.(check bool) "timestamps nondecreasing" true (sorted ts);
  fresh ()

(* ---- counter exactness ---- *)

(* Three-edge chain, transitive closure. Semi-naïve, by hand:
   iter 1: base rule fires on the 3 edges (3 matches, 3 inserts);
   iter 2: the 3 new paths join edges at 2 places (2 matches, 2 inserts);
   iter 3: 1 match, 1 insert;  iter 4: nothing — saturated.
   Totals: 4 iterations, 6 matches, 6 inserts, 0 duplicates, 0 unions. *)
let path_program =
  {|
  (relation edge (i64 i64))
  (relation path (i64 i64))
  (rule ((edge a b)) ((path a b)))
  (rule ((path a b) (edge b c)) ((path a c)))
  (edge 1 2) (edge 2 3) (edge 3 4)
  (run 10)
|}

let counter_value snap name =
  match List.assoc_opt name snap.T.sn_counters with Some n -> n | None -> 0

let test_counters_hand_counted () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng path_program);
  T.disable ();
  let snap = T.snapshot () in
  let check name expected =
    Alcotest.(check int) name expected (counter_value snap name)
  in
  check "engine.iterations" 4;
  check "engine.matches_applied" 6;
  check "engine.tuples_inserted" 6;
  check "engine.matches_deduplicated" 0;
  check "db.unions" 0;
  check "scheduler.bans" 0;
  (* the timing aggregates exist and phase times sum inside the total *)
  let timing name = List.assoc_opt name snap.T.sn_timings in
  (match (timing "engine.iteration", timing "engine.search") with
   | Some it, Some se ->
     Alcotest.(check int) "iteration count" 4 it.T.t_count;
     Alcotest.(check bool) "search fits in iteration" true (se.T.t_total <= it.T.t_total)
   | _ -> Alcotest.fail "missing engine timing aggregates");
  fresh ()

(* Duplicate derivations: a second rule re-deriving the same base paths
   must count as matches that deduplicate, not as inserts. *)
let test_deduplicated_matches () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
  (relation edge (i64 i64))
  (relation path (i64 i64))
  (rule ((edge a b)) ((path a b)))
  (rule ((edge x y)) ((path x y)))
  (edge 1 2) (edge 2 3) (edge 3 4)
|});
  let report = E.Engine.run_iterations eng 10 in
  T.disable ();
  let snap = T.snapshot () in
  Alcotest.(check int) "matches" 6 (counter_value snap "engine.matches_applied");
  Alcotest.(check int) "inserted" 3 (counter_value snap "engine.tuples_inserted");
  Alcotest.(check int) "deduplicated" 3 (counter_value snap "engine.matches_deduplicated");
  let total_dedup =
    List.fold_left (fun acc (r : E.Engine.rule_stat) -> acc + r.rs_deduplicated) 0
      report.E.Engine.rule_stats
  in
  Alcotest.(check int) "rule_stats agree on dedup" 3 total_dedup;
  let total_inserted =
    List.fold_left (fun acc (r : E.Engine.rule_stat) -> acc + r.rs_inserted) 0
      report.E.Engine.rule_stats
  in
  Alcotest.(check int) "rule_stats agree on inserts" 3 total_inserted;
  fresh ()

(* ---- run_report printer ---- *)

let test_report_printer () =
  fresh ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation edge (i64 i64)) (edge 1 2)");
  (* no rules at all: the report must not print a dangling rule table *)
  let report = E.Engine.run_iterations eng 3 in
  let out = Format.asprintf "%a" E.Engine.pp_run_report report in
  Alcotest.(check bool) "no empty rule table" false (contains out "rule");
  Alcotest.(check bool) "has summary" true (contains out "iteration(s)");
  (* with rules, the table appears with the new columns *)
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 path_program) |> ignore;
  ignore
    (E.run_string eng2 "(edge 4 5)");
  let report2 = E.Engine.run_iterations eng2 10 in
  let out2 = Format.asprintf "%a" E.Engine.pp_run_report report2 in
  Alcotest.(check bool) "rule table present" true (contains out2 "matches");
  Alcotest.(check bool) "dedup column present" true (contains out2 "dedup");
  fresh ()

(* ---- JSONL round-trip ---- *)

let test_jsonl_roundtrip () =
  fresh ();
  install_ticker ();
  let events =
    with_sink (fun () ->
        let eng = E.Engine.create () in
        ignore (E.run_string eng path_program);
        T.flush_counters ())
  in
  Alcotest.(check bool) "produced events" true (List.length events > 10);
  (* with the integer-stepping fake clock every float is exactly
     representable, so print -> parse is the identity *)
  List.iter
    (fun e ->
      let reparsed = J.parse (J.to_string e) in
      if reparsed <> e then
        Alcotest.failf "round-trip changed %s into %s" (J.to_string e) (J.to_string reparsed))
    events;
  (* every event carries the envelope fields *)
  List.iter
    (fun e ->
      ignore (str_field "ev" e);
      ignore (str_field "name" e))
    events;
  (* the flush included counters and aggregates *)
  let kinds = List.map (fun e -> str_field "ev" e) events in
  Alcotest.(check bool) "has counter flush" true (List.mem "c" kinds);
  Alcotest.(check bool) "has histogram flush" true (List.mem "h" kinds);
  fresh ()

let test_json_parser () =
  fresh ();
  let roundtrip j = Alcotest.(check bool) (J.to_string j) true (J.parse (J.to_string j) = j) in
  roundtrip (J.Obj [ ("a", J.List [ J.Int 1; J.Float 2.5; J.Null; J.Bool true ]) ]);
  roundtrip (J.Str "quote\" slash\\ newline\n tab\t");
  roundtrip (J.List []);
  roundtrip (J.Obj []);
  Alcotest.(check bool) "unicode escape" true (J.parse {|"A"|} = J.Str "A");
  (match J.parse "{\"x\": [1, {\"y\": null}]}" with
   | J.Obj _ -> ()
   | _ -> Alcotest.fail "nested parse");
  List.iter
    (fun bad ->
      match J.parse bad with
      | exception J.Parse_error _ -> ()
      | j -> Alcotest.failf "accepted %S as %s" bad (J.to_string j))
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ];
  fresh ()

(* ---- disabled path ---- *)

let test_disabled_records_nothing () =
  fresh ();
  (* capture events while enabled, then disable and keep poking *)
  let live = ref 0 in
  T.enable ~sink:(fun _ -> incr live) ();
  T.add "probe" 1;
  T.flush_counters ();
  let while_enabled = !live in
  Alcotest.(check bool) "sink saw the flush" true (while_enabled > 0);
  T.disable ();
  T.reset ();
  T.flightrec_clear ();
  let c = T.counter "test.disabled" in
  T.bump c 5;
  T.add "test.disabled2" 7;
  T.observe "test.timing" 1.0;
  T.hist_record (T.histogram "test.hist") 1.0;
  T.instant "test.instant" [ ("x", J.Int 1) ];
  T.span "test.span" (fun () -> ());
  ignore (T.timed_span "test.timed" (fun () -> ()));
  T.flush_counters ();
  Alcotest.(check int) "no events after disable" while_enabled !live;
  let snap = T.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length snap.T.sn_counters);
  Alcotest.(check int) "no timings" 0 (List.length snap.T.sn_timings);
  Alcotest.(check bool) "no hist observations" true
    (List.for_all (fun (_, h) -> h.T.hs_count = 0) snap.T.sn_hists);
  Alcotest.(check int) "flight recorder stays empty" 0
    (List.length (T.flightrec_events ()));
  Alcotest.(check bool) "reports disabled" false (T.is_enabled ());
  (* pp_table prints nothing at all for an empty snapshot *)
  Alcotest.(check string) "empty table" "" (Format.asprintf "%a" T.pp_table snap);
  fresh ()

(* ---- snapshot JSON ---- *)

let test_snapshot_json () =
  fresh ();
  T.enable ();
  T.add "alpha" 2;
  T.observe "beta" 0.5;
  T.disable ();
  let j = T.snapshot_to_json (T.snapshot ()) in
  (match J.member "counters" j with
   | Some (J.Obj [ ("alpha", J.Int 2) ]) -> ()
   | other ->
     Alcotest.failf "unexpected counters: %s"
       (match other with Some o -> J.to_string o | None -> "<missing>"));
  (match J.member "timings" j with
   | Some (J.Obj [ ("beta", obj) ]) ->
     Alcotest.(check int) "count" 1 (int_field "count" obj)
   | other ->
     Alcotest.failf "unexpected timings: %s"
       (match other with Some o -> J.to_string o | None -> "<missing>"));
  (* report_to_json is parseable *)
  (match J.parse (T.report_to_json (T.snapshot ())) with
   | J.Obj _ -> ()
   | _ -> Alcotest.fail "report_to_json not an object");
  fresh ()

(* ---- join cache: stamp windows, patching, and accounting ---- *)

(* Empty deltas are the common case at a fixpoint: the log must report zero
   entries past the newest stamp and the suffix iterator must visit
   nothing. *)
let test_empty_delta_iteration () =
  fresh ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation r (i64)) (r 1) (r 2)");
  let db = E.Engine.database eng in
  let t =
    match E.Database.find_func db (E.Symbol.intern "r") with
    | Some t -> t
    | None -> Alcotest.fail "no table r"
  in
  let now = E.Database.timestamp db in
  Alcotest.(check int) "no entries past the newest stamp" 0 (E.Table.entries_since t (now + 1));
  Alcotest.(check bool) "all entries from stamp zero" true (E.Table.entries_since t 0 >= 2);
  let visited = ref 0 in
  E.Table.iter_log_suffix t ~from:(E.Table.log_length t) (fun _ _ -> incr visited);
  Alcotest.(check int) "suffix from the log end is empty" 0 !visited;
  visited := 0;
  E.Table.iter_log_suffix t ~from:0 (fun _ _ -> incr visited);
  Alcotest.(check int) "suffix from zero visits every surviving row" 2 !visited;
  (* a copy is a distinct incarnation even though version is preserved *)
  let t' =
    match E.Database.find_func (E.Database.copy db) (E.Symbol.intern "r") with
    | Some t' -> t'
    | None -> Alcotest.fail "no table r in copy"
  in
  Alcotest.(check int) "copy preserves version" (E.Table.version t) (E.Table.version t');
  Alcotest.(check bool) "copy gets a fresh uid" true (E.Table.uid t <> E.Table.uid t');
  fresh ()

(* Every cached structure request resolves to exactly one hit or one miss,
   including runs past saturation where all deltas are empty. *)
let test_cache_accounting () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng path_program);
  ignore (E.Engine.run_iterations eng 3);
  T.disable ();
  let snap = T.snapshot () in
  let v = counter_value snap in
  Alcotest.(check int) "hits + misses = lookups" (v "join.cache_lookups")
    (v "join.cache_hits" + v "join.cache_misses");
  Alcotest.(check bool) "lookups happened" true (v "join.cache_lookups" > 0);
  Alcotest.(check bool) "patches are hits" true (v "join.index_patched" <= v "join.cache_hits");
  Alcotest.(check bool) "plans were built" true (v "join.plans_built" > 0);
  fresh ()

(* Append-only growth between runs patches the cached full-table structures
   forward instead of rebuilding them. *)
let test_index_patching () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
  (relation e (i64 i64))
  (relation out (i64 i64))
  (rule ((e x y) (e y z)) ((out x z)))
|});
  for i = 1 to 6 do
    E.Engine.set_fact eng "e" [ E.Value.VInt i; E.Value.VInt (i + 1) ] E.Value.VUnit
  done;
  ignore (E.Engine.run_iterations eng 3);
  let before = counter_value (T.snapshot ()) "join.index_patched" in
  for i = 10 to 14 do
    E.Engine.set_fact eng "e" [ E.Value.VInt i; E.Value.VInt (i + 1) ] E.Value.VUnit
  done;
  ignore (E.Engine.run_iterations eng 3);
  T.disable ();
  let snap = T.snapshot () in
  let v = counter_value snap in
  Alcotest.(check bool) "second run patched cached structures" true
    (v "join.index_patched" > before);
  Alcotest.(check int) "hits + misses = lookups" (v "join.cache_lookups")
    (v "join.cache_hits" + v "join.cache_misses");
  (* patched structures answer correctly: both chains contribute their
     two-step pairs and nothing else *)
  Alcotest.(check int) "two-step pairs" 9 (E.Engine.table_size eng "out")

(* Pop replaces the database object: cached structures for the popped
   incarnation must never serve the restored one. *)
let test_popped_scope_invalidation () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
  (relation e (i64 i64))
  (relation out (i64 i64))
  (rule ((e x y) (e y z)) ((out x z)))
  (e 1 2) (e 2 3)
  (run 2)
|});
  Alcotest.(check int) "base join" 1 (E.Engine.table_size eng "out");
  ignore (E.run_string eng "(push) (e 3 4) (run 2)");
  Alcotest.(check int) "scoped join" 2 (E.Engine.table_size eng "out");
  ignore (E.run_string eng "(pop)");
  Alcotest.(check int) "pop restores" 1 (E.Engine.table_size eng "out");
  (* rerunning against the restored incarnation must rebuild, not resurrect
     the scoped (3 4) edge *)
  ignore (E.run_string eng "(e 5 6) (run 2)");
  Alcotest.(check int) "post-pop join unchanged" 1 (E.Engine.table_size eng "out");
  T.disable ();
  let snap = T.snapshot () in
  let v = counter_value snap in
  Alcotest.(check int) "hits + misses = lookups across push/pop" (v "join.cache_lookups")
    (v "join.cache_hits" + v "join.cache_misses");
  fresh ()

(* ---- log-bucketed histograms ---- *)

let test_hist_buckets () =
  fresh ();
  T.enable ();
  let h = T.hist_create () in
  (* one value per interesting class *)
  List.iter (T.hist_record h) [ 0.5; 1.0; 3.0; 0.0; -2.0; infinity; neg_infinity; nan ];
  let s = T.hist_snap_of h in
  (* nan dropped; everything else counted *)
  Alcotest.(check int) "count drops nan only" 7 s.T.hs_count;
  (* sum adds only the finite values: 0.5 + 1 + 3 + 0 - 2 *)
  Alcotest.(check (float 1e-9)) "finite sum" 2.5 s.T.hs_sum;
  (* bucket upper bounds are exact powers of two; quantiles walk the merged
     buckets: rank 4 of 7 lands on the (0.25, 0.5] bucket *)
  Alcotest.(check (float 0.0)) "p50 is a bucket bound" 0.5 (T.hist_snap_quantile s 0.5);
  Alcotest.(check (float 0.0)) "p99 reaches the +inf bucket" (Float.ldexp 1.0 63)
    (T.hist_snap_quantile s 0.99);
  Alcotest.(check (float 0.0)) "1.0 bucket le" 1.0 (T.hist_bucket_le 64);
  Alcotest.(check (float 0.0)) "(2,4] bucket le" 4.0 (T.hist_bucket_le 66);
  (* empty snapshot: quantile 0, json has only count/sum *)
  let empty = T.hist_snap_of (T.hist_create ()) in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (T.hist_snap_quantile empty 0.99);
  (match T.hist_snap_to_json empty with
   | J.Obj [ ("count", J.Int 0); ("sum", J.Float 0.0) ] -> ()
   | j -> Alcotest.failf "empty hist json: %s" (J.to_string j));
  (* non-empty json carries quantiles and buckets *)
  (match J.member "p99" (T.hist_snap_to_json s) with
   | Some (J.Float _) -> ()
   | _ -> Alcotest.fail "p99 missing");
  fresh ()

(* Shard invariance: the same multiset of observations gives byte-identical
   snapshot JSON however the observations are split across domain shards.
   Observations are integer-valued so the shard-order float sum is exact. *)
let prop_hist_shard_invariance =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 200)
        (oneof
           [
             map float_of_int (int_range (-1000) 1000);
             map (fun e -> Float.ldexp 1.0 e) (int_range 0 20);
             oneofl [ nan; infinity; neg_infinity; 0.0 ];
           ]))
  in
  QCheck2.Test.make ~name:"histogram merge is shard-partition invariant" ~count:100 gen
    (fun values ->
      fresh ();
      T.enable ();
      let h_one = T.hist_create () and h_split = T.hist_create () in
      List.iter (T.hist_record h_one) values;
      List.iteri
        (fun i v ->
          T.set_shard (i mod 4);
          T.hist_record h_split v)
        values;
      T.set_shard 0;
      let j h = J.to_string (T.hist_snap_to_json (T.hist_snap_of h)) in
      let same = String.equal (j h_one) (j h_split) in
      if not same then
        QCheck2.Test.fail_reportf "one-shard %s@.split %s" (j h_one) (j h_split);
      T.disable ();
      same)

(* The per-rule/per-phase histograms are value-based for rule matches, so
   the snapshot is byte-identical whatever --jobs the engine ran with. *)
let test_hist_cross_jobs () =
  let snap_at jobs =
    fresh ();
    T.enable ();
    let eng = E.Engine.create ~jobs () in
    ignore (E.run_string eng path_program);
    let j =
      J.to_string (T.hist_snap_to_json (T.hist_snap_of (T.histogram "engine.rule_matches")))
    in
    T.disable ();
    j
  in
  let j1 = snap_at 1 and j2 = snap_at 2 and j4 = snap_at 4 in
  Alcotest.(check string) "jobs 2 = jobs 1" j1 j2;
  Alcotest.(check string) "jobs 4 = jobs 1" j1 j4;
  Alcotest.(check bool) "hist is populated" true (contains j1 "buckets");
  fresh ()

(* ---- flight recorder ---- *)

let test_flightrec_ring () =
  fresh ();
  T.flightrec_configure ~capacity:8;
  T.enable ();
  for i = 1 to 20 do
    T.instant (Printf.sprintf "ev%d" i) []
  done;
  T.disable ();
  let events = T.flightrec_events () in
  Alcotest.(check int) "ring holds capacity" 8 (List.length events);
  let names = List.map (fun l -> str_field "name" (J.parse l)) events in
  Alcotest.(check (list string)) "oldest-first window of the tail"
    [ "ev13"; "ev14"; "ev15"; "ev16"; "ev17"; "ev18"; "ev19"; "ev20" ]
    names;
  T.flightrec_clear ();
  Alcotest.(check int) "clear empties the ring" 0 (List.length (T.flightrec_events ()));
  (* capacity 0 disables capture entirely *)
  T.flightrec_configure ~capacity:0;
  T.enable ();
  T.instant "dropped" [];
  T.disable ();
  Alcotest.(check int) "capacity 0 records nothing" 0 (List.length (T.flightrec_events ()));
  T.flightrec_configure ~capacity:512;
  fresh ()

let test_flightrec_dump () =
  fresh ();
  T.flightrec_configure ~capacity:64;
  install_ticker ();
  T.enable ();
  T.with_trace_id "t-000042" (fun () ->
      T.span "req" (fun () -> T.span "inner" (fun () -> ())));
  T.disable ();
  let path = Filename.temp_file "egglog_flightrec" ".jsonl" in
  let n = T.flightrec_dump ~path in
  Alcotest.(check int) "dumped every ring event" 4 n;
  let lines = In_channel.with_open_text path In_channel.input_lines in
  Sys.remove path;
  Alcotest.(check int) "file has one line per event" n (List.length lines);
  let events = List.map J.parse lines in
  (* spans balance: every begin has its end, depth never goes negative *)
  let depth = ref 0 in
  List.iter
    (fun e ->
      (match str_field "ev" e with
       | "b" -> incr depth
       | "e" -> decr depth
       | _ -> ());
      if !depth < 0 then Alcotest.fail "unbalanced spans in dump")
    events;
  Alcotest.(check int) "spans balance" 0 !depth;
  (* every event carries the ambient trace id *)
  List.iter
    (fun e -> Alcotest.(check string) "tid tag" "t-000042" (str_field "tid" e))
    events;
  (* dumping an empty ring writes no file *)
  T.flightrec_clear ();
  let path2 = Filename.concat (Filename.get_temp_dir_name ()) "egglog_flightrec_empty.jsonl" in
  Alcotest.(check int) "empty ring dumps nothing" 0 (T.flightrec_dump ~path:path2);
  Alcotest.(check bool) "no file created" false (Sys.file_exists path2);
  T.flightrec_configure ~capacity:512;
  fresh ()

let test_trace_id_scoping () =
  fresh ();
  Alcotest.(check (option string)) "no ambient id" None (T.current_trace_id ());
  T.with_trace_id "outer" (fun () ->
      Alcotest.(check (option string)) "set" (Some "outer") (T.current_trace_id ());
      T.with_trace_id "inner" (fun () ->
          Alcotest.(check (option string)) "nested" (Some "inner") (T.current_trace_id ()));
      Alcotest.(check (option string)) "restored" (Some "outer") (T.current_trace_id ()));
  (try T.with_trace_id "boom" (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check (option string)) "restored on exception" None (T.current_trace_id ());
  fresh ()

(* ---- non-finite floats never reach the JSON ---- *)

let test_nonfinite_json () =
  fresh ();
  T.enable ();
  T.observe "bad.timing" infinity;
  T.observe "bad.timing" nan;
  T.observe "good.timing" 1.0;
  let h = T.histogram "bad.hist" in
  T.hist_record h infinity;
  T.hist_record h nan;
  T.disable ();
  let s = J.to_string (T.snapshot_to_json (T.snapshot ())) in
  Alcotest.(check bool) "snapshot JSON has no null" false (contains s "null");
  (match J.parse s with J.Obj _ -> () | _ -> Alcotest.fail "snapshot unparseable");
  fresh ()

let () =
  Alcotest.run "telemetry"
    [
      ( "clock",
        [
          Alcotest.test_case "fake clock is deterministic" `Quick test_fake_clock;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting, balance, exceptions" `Quick test_span_balance;
        ] );
      ( "counters",
        [
          Alcotest.test_case "hand-counted program" `Quick test_counters_hand_counted;
          Alcotest.test_case "deduplicated matches" `Quick test_deduplicated_matches;
          Alcotest.test_case "run report printer" `Quick test_report_printer;
        ] );
      ( "json",
        [
          Alcotest.test_case "trace JSONL round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "parser accepts/rejects" `Quick test_json_parser;
          Alcotest.test_case "snapshot schema" `Quick test_snapshot_json;
        ] );
      ( "join cache",
        [
          Alcotest.test_case "empty delta iteration" `Quick test_empty_delta_iteration;
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_accounting;
          Alcotest.test_case "append-only patching" `Quick test_index_patching;
          Alcotest.test_case "popped-scope invalidation" `Quick test_popped_scope_invalidation;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "buckets and quantiles" `Quick test_hist_buckets;
          QCheck_alcotest.to_alcotest prop_hist_shard_invariance;
          Alcotest.test_case "byte-identical across --jobs" `Quick test_hist_cross_jobs;
          Alcotest.test_case "non-finite floats never reach JSON" `Quick test_nonfinite_json;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "ring wraps and clears" `Quick test_flightrec_ring;
          Alcotest.test_case "dump balances spans and tags trace ids" `Quick
            test_flightrec_dump;
          Alcotest.test_case "trace id scoping" `Quick test_trace_id_scoping;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick test_disabled_records_nothing;
        ] );
    ]
