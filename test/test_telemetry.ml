(* The telemetry subsystem: deterministic fake clock, span begin/end
   balance (including across exceptions), counter exactness on a program
   whose match counts are derivable by hand, JSONL round-trips through the
   JSON printer/parser, and the fully disabled path recording nothing. *)

module E = Egglog
module T = Egglog.Telemetry
module J = T.Json

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Every test starts from a clean slate and leaves one behind: the module
   state is global, exactly like Fault's. *)
let fresh () =
  T.disable ();
  T.reset ();
  T.use_default_clock ()

(* A clock that advances one second per reading. *)
let install_ticker () =
  let t = ref 0.0 in
  T.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let with_sink f =
  let events = ref [] in
  T.enable ~sink:(fun line -> events := line :: !events) ();
  f ();
  T.disable ();
  List.rev_map J.parse !events

let field name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "event %s lacks field %s" (J.to_string j) name

let str_field name j =
  match field name j with
  | J.Str s -> s
  | _ -> Alcotest.failf "field %s is not a string in %s" name (J.to_string j)

let int_field name j =
  match field name j with
  | J.Int n -> n
  | _ -> Alcotest.failf "field %s is not an int in %s" name (J.to_string j)

(* ---- fake clock ---- *)

let test_fake_clock () =
  fresh ();
  install_ticker ();
  (* disabled timed_span reads the clock exactly twice *)
  let dt, v = T.timed_span "t" (fun () -> 41 + 1) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check (float 1e-9)) "duration is one tick" 1.0 dt;
  (* now() keeps ticking deterministically *)
  let a = T.now () and b = T.now () in
  Alcotest.(check (float 1e-9)) "one tick apart" 1.0 (b -. a);
  fresh ()

(* ---- span nesting and balance ---- *)

let test_span_balance () =
  fresh ();
  install_ticker ();
  let events =
    with_sink (fun () ->
        T.span "outer" (fun () ->
            T.span "inner" (fun () -> ());
            (try T.span "boom" (fun () -> raise Exit) with Exit -> ())))
  in
  let sig_of e = (str_field "ev" e, str_field "name" e, int_field "depth" e) in
  Alcotest.(check (list (triple string string int)))
    "b/e pairing and depth"
    [
      ("b", "outer", 0);
      ("b", "inner", 1);
      ("e", "inner", 1);
      ("b", "boom", 1);
      ("e", "boom", 1);  (* closed even though the body raised *)
      ("e", "outer", 0);
    ]
    (List.map sig_of events);
  (* timestamps never go backwards *)
  let ts =
    List.map (fun e -> match field "t" e with J.Float t -> t | J.Int t -> float_of_int t | _ -> nan) events
  in
  let rec sorted = function a :: (b :: _ as rest) -> a <= b && sorted rest | _ -> true in
  Alcotest.(check bool) "timestamps nondecreasing" true (sorted ts);
  fresh ()

(* ---- counter exactness ---- *)

(* Three-edge chain, transitive closure. Semi-naïve, by hand:
   iter 1: base rule fires on the 3 edges (3 matches, 3 inserts);
   iter 2: the 3 new paths join edges at 2 places (2 matches, 2 inserts);
   iter 3: 1 match, 1 insert;  iter 4: nothing — saturated.
   Totals: 4 iterations, 6 matches, 6 inserts, 0 duplicates, 0 unions. *)
let path_program =
  {|
  (relation edge (i64 i64))
  (relation path (i64 i64))
  (rule ((edge a b)) ((path a b)))
  (rule ((path a b) (edge b c)) ((path a c)))
  (edge 1 2) (edge 2 3) (edge 3 4)
  (run 10)
|}

let counter_value snap name =
  match List.assoc_opt name snap.T.sn_counters with Some n -> n | None -> 0

let test_counters_hand_counted () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng path_program);
  T.disable ();
  let snap = T.snapshot () in
  let check name expected =
    Alcotest.(check int) name expected (counter_value snap name)
  in
  check "engine.iterations" 4;
  check "engine.matches_applied" 6;
  check "engine.tuples_inserted" 6;
  check "engine.matches_deduplicated" 0;
  check "db.unions" 0;
  check "scheduler.bans" 0;
  (* the timing aggregates exist and phase times sum inside the total *)
  let timing name = List.assoc_opt name snap.T.sn_timings in
  (match (timing "engine.iteration", timing "engine.search") with
   | Some it, Some se ->
     Alcotest.(check int) "iteration count" 4 it.T.t_count;
     Alcotest.(check bool) "search fits in iteration" true (se.T.t_total <= it.T.t_total)
   | _ -> Alcotest.fail "missing engine timing aggregates");
  fresh ()

(* Duplicate derivations: a second rule re-deriving the same base paths
   must count as matches that deduplicate, not as inserts. *)
let test_deduplicated_matches () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
  (relation edge (i64 i64))
  (relation path (i64 i64))
  (rule ((edge a b)) ((path a b)))
  (rule ((edge x y)) ((path x y)))
  (edge 1 2) (edge 2 3) (edge 3 4)
|});
  let report = E.Engine.run_iterations eng 10 in
  T.disable ();
  let snap = T.snapshot () in
  Alcotest.(check int) "matches" 6 (counter_value snap "engine.matches_applied");
  Alcotest.(check int) "inserted" 3 (counter_value snap "engine.tuples_inserted");
  Alcotest.(check int) "deduplicated" 3 (counter_value snap "engine.matches_deduplicated");
  let total_dedup =
    List.fold_left (fun acc (r : E.Engine.rule_stat) -> acc + r.rs_deduplicated) 0
      report.E.Engine.rule_stats
  in
  Alcotest.(check int) "rule_stats agree on dedup" 3 total_dedup;
  let total_inserted =
    List.fold_left (fun acc (r : E.Engine.rule_stat) -> acc + r.rs_inserted) 0
      report.E.Engine.rule_stats
  in
  Alcotest.(check int) "rule_stats agree on inserts" 3 total_inserted;
  fresh ()

(* ---- run_report printer ---- *)

let test_report_printer () =
  fresh ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation edge (i64 i64)) (edge 1 2)");
  (* no rules at all: the report must not print a dangling rule table *)
  let report = E.Engine.run_iterations eng 3 in
  let out = Format.asprintf "%a" E.Engine.pp_run_report report in
  Alcotest.(check bool) "no empty rule table" false (contains out "rule");
  Alcotest.(check bool) "has summary" true (contains out "iteration(s)");
  (* with rules, the table appears with the new columns *)
  let eng2 = E.Engine.create () in
  ignore (E.run_string eng2 path_program) |> ignore;
  ignore
    (E.run_string eng2 "(edge 4 5)");
  let report2 = E.Engine.run_iterations eng2 10 in
  let out2 = Format.asprintf "%a" E.Engine.pp_run_report report2 in
  Alcotest.(check bool) "rule table present" true (contains out2 "matches");
  Alcotest.(check bool) "dedup column present" true (contains out2 "dedup");
  fresh ()

(* ---- JSONL round-trip ---- *)

let test_jsonl_roundtrip () =
  fresh ();
  install_ticker ();
  let events =
    with_sink (fun () ->
        let eng = E.Engine.create () in
        ignore (E.run_string eng path_program);
        T.flush_counters ())
  in
  Alcotest.(check bool) "produced events" true (List.length events > 10);
  (* with the integer-stepping fake clock every float is exactly
     representable, so print -> parse is the identity *)
  List.iter
    (fun e ->
      let reparsed = J.parse (J.to_string e) in
      if reparsed <> e then
        Alcotest.failf "round-trip changed %s into %s" (J.to_string e) (J.to_string reparsed))
    events;
  (* every event carries the envelope fields *)
  List.iter
    (fun e ->
      ignore (str_field "ev" e);
      ignore (str_field "name" e))
    events;
  (* the flush included counters and aggregates *)
  let kinds = List.map (fun e -> str_field "ev" e) events in
  Alcotest.(check bool) "has counter flush" true (List.mem "c" kinds);
  Alcotest.(check bool) "has histogram flush" true (List.mem "h" kinds);
  fresh ()

let test_json_parser () =
  fresh ();
  let roundtrip j = Alcotest.(check bool) (J.to_string j) true (J.parse (J.to_string j) = j) in
  roundtrip (J.Obj [ ("a", J.List [ J.Int 1; J.Float 2.5; J.Null; J.Bool true ]) ]);
  roundtrip (J.Str "quote\" slash\\ newline\n tab\t");
  roundtrip (J.List []);
  roundtrip (J.Obj []);
  Alcotest.(check bool) "unicode escape" true (J.parse {|"A"|} = J.Str "A");
  (match J.parse "{\"x\": [1, {\"y\": null}]}" with
   | J.Obj _ -> ()
   | _ -> Alcotest.fail "nested parse");
  List.iter
    (fun bad ->
      match J.parse bad with
      | exception J.Parse_error _ -> ()
      | j -> Alcotest.failf "accepted %S as %s" bad (J.to_string j))
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ];
  fresh ()

(* ---- disabled path ---- *)

let test_disabled_records_nothing () =
  fresh ();
  (* capture events while enabled, then disable and keep poking *)
  let live = ref 0 in
  T.enable ~sink:(fun _ -> incr live) ();
  T.add "probe" 1;
  T.flush_counters ();
  let while_enabled = !live in
  Alcotest.(check bool) "sink saw the flush" true (while_enabled > 0);
  T.disable ();
  T.reset ();
  let c = T.counter "test.disabled" in
  T.bump c 5;
  T.add "test.disabled2" 7;
  T.observe "test.timing" 1.0;
  T.instant "test.instant" [ ("x", J.Int 1) ];
  T.span "test.span" (fun () -> ());
  ignore (T.timed_span "test.timed" (fun () -> ()));
  T.flush_counters ();
  Alcotest.(check int) "no events after disable" while_enabled !live;
  let snap = T.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length snap.T.sn_counters);
  Alcotest.(check int) "no timings" 0 (List.length snap.T.sn_timings);
  Alcotest.(check bool) "reports disabled" false (T.is_enabled ());
  (* pp_table prints nothing at all for an empty snapshot *)
  Alcotest.(check string) "empty table" "" (Format.asprintf "%a" T.pp_table snap);
  fresh ()

(* ---- snapshot JSON ---- *)

let test_snapshot_json () =
  fresh ();
  T.enable ();
  T.add "alpha" 2;
  T.observe "beta" 0.5;
  T.disable ();
  let j = T.snapshot_to_json (T.snapshot ()) in
  (match J.member "counters" j with
   | Some (J.Obj [ ("alpha", J.Int 2) ]) -> ()
   | other ->
     Alcotest.failf "unexpected counters: %s"
       (match other with Some o -> J.to_string o | None -> "<missing>"));
  (match J.member "timings" j with
   | Some (J.Obj [ ("beta", obj) ]) ->
     Alcotest.(check int) "count" 1 (int_field "count" obj)
   | other ->
     Alcotest.failf "unexpected timings: %s"
       (match other with Some o -> J.to_string o | None -> "<missing>"));
  (* report_to_json is parseable *)
  (match J.parse (T.report_to_json (T.snapshot ())) with
   | J.Obj _ -> ()
   | _ -> Alcotest.fail "report_to_json not an object");
  fresh ()

(* ---- join cache: stamp windows, patching, and accounting ---- *)

(* Empty deltas are the common case at a fixpoint: the log must report zero
   entries past the newest stamp and the suffix iterator must visit
   nothing. *)
let test_empty_delta_iteration () =
  fresh ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng "(relation r (i64)) (r 1) (r 2)");
  let db = E.Engine.database eng in
  let t =
    match E.Database.find_func db (E.Symbol.intern "r") with
    | Some t -> t
    | None -> Alcotest.fail "no table r"
  in
  let now = E.Database.timestamp db in
  Alcotest.(check int) "no entries past the newest stamp" 0 (E.Table.entries_since t (now + 1));
  Alcotest.(check bool) "all entries from stamp zero" true (E.Table.entries_since t 0 >= 2);
  let visited = ref 0 in
  E.Table.iter_log_suffix t ~from:(E.Table.log_length t) (fun _ _ -> incr visited);
  Alcotest.(check int) "suffix from the log end is empty" 0 !visited;
  visited := 0;
  E.Table.iter_log_suffix t ~from:0 (fun _ _ -> incr visited);
  Alcotest.(check int) "suffix from zero visits every surviving row" 2 !visited;
  (* a copy is a distinct incarnation even though version is preserved *)
  let t' =
    match E.Database.find_func (E.Database.copy db) (E.Symbol.intern "r") with
    | Some t' -> t'
    | None -> Alcotest.fail "no table r in copy"
  in
  Alcotest.(check int) "copy preserves version" (E.Table.version t) (E.Table.version t');
  Alcotest.(check bool) "copy gets a fresh uid" true (E.Table.uid t <> E.Table.uid t');
  fresh ()

(* Every cached structure request resolves to exactly one hit or one miss,
   including runs past saturation where all deltas are empty. *)
let test_cache_accounting () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore (E.run_string eng path_program);
  ignore (E.Engine.run_iterations eng 3);
  T.disable ();
  let snap = T.snapshot () in
  let v = counter_value snap in
  Alcotest.(check int) "hits + misses = lookups" (v "join.cache_lookups")
    (v "join.cache_hits" + v "join.cache_misses");
  Alcotest.(check bool) "lookups happened" true (v "join.cache_lookups" > 0);
  Alcotest.(check bool) "patches are hits" true (v "join.index_patched" <= v "join.cache_hits");
  Alcotest.(check bool) "plans were built" true (v "join.plans_built" > 0);
  fresh ()

(* Append-only growth between runs patches the cached full-table structures
   forward instead of rebuilding them. *)
let test_index_patching () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
  (relation e (i64 i64))
  (relation out (i64 i64))
  (rule ((e x y) (e y z)) ((out x z)))
|});
  for i = 1 to 6 do
    E.Engine.set_fact eng "e" [ E.Value.VInt i; E.Value.VInt (i + 1) ] E.Value.VUnit
  done;
  ignore (E.Engine.run_iterations eng 3);
  let before = counter_value (T.snapshot ()) "join.index_patched" in
  for i = 10 to 14 do
    E.Engine.set_fact eng "e" [ E.Value.VInt i; E.Value.VInt (i + 1) ] E.Value.VUnit
  done;
  ignore (E.Engine.run_iterations eng 3);
  T.disable ();
  let snap = T.snapshot () in
  let v = counter_value snap in
  Alcotest.(check bool) "second run patched cached structures" true
    (v "join.index_patched" > before);
  Alcotest.(check int) "hits + misses = lookups" (v "join.cache_lookups")
    (v "join.cache_hits" + v "join.cache_misses");
  (* patched structures answer correctly: both chains contribute their
     two-step pairs and nothing else *)
  Alcotest.(check int) "two-step pairs" 9 (E.Engine.table_size eng "out")

(* Pop replaces the database object: cached structures for the popped
   incarnation must never serve the restored one. *)
let test_popped_scope_invalidation () =
  fresh ();
  T.enable ();
  let eng = E.Engine.create () in
  ignore
    (E.run_string eng
       {|
  (relation e (i64 i64))
  (relation out (i64 i64))
  (rule ((e x y) (e y z)) ((out x z)))
  (e 1 2) (e 2 3)
  (run 2)
|});
  Alcotest.(check int) "base join" 1 (E.Engine.table_size eng "out");
  ignore (E.run_string eng "(push) (e 3 4) (run 2)");
  Alcotest.(check int) "scoped join" 2 (E.Engine.table_size eng "out");
  ignore (E.run_string eng "(pop)");
  Alcotest.(check int) "pop restores" 1 (E.Engine.table_size eng "out");
  (* rerunning against the restored incarnation must rebuild, not resurrect
     the scoped (3 4) edge *)
  ignore (E.run_string eng "(e 5 6) (run 2)");
  Alcotest.(check int) "post-pop join unchanged" 1 (E.Engine.table_size eng "out");
  T.disable ();
  let snap = T.snapshot () in
  let v = counter_value snap in
  Alcotest.(check int) "hits + misses = lookups across push/pop" (v "join.cache_lookups")
    (v "join.cache_hits" + v "join.cache_misses");
  fresh ()

let () =
  Alcotest.run "telemetry"
    [
      ( "clock",
        [
          Alcotest.test_case "fake clock is deterministic" `Quick test_fake_clock;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting, balance, exceptions" `Quick test_span_balance;
        ] );
      ( "counters",
        [
          Alcotest.test_case "hand-counted program" `Quick test_counters_hand_counted;
          Alcotest.test_case "deduplicated matches" `Quick test_deduplicated_matches;
          Alcotest.test_case "run report printer" `Quick test_report_printer;
        ] );
      ( "json",
        [
          Alcotest.test_case "trace JSONL round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "parser accepts/rejects" `Quick test_json_parser;
          Alcotest.test_case "snapshot schema" `Quick test_snapshot_json;
        ] );
      ( "join cache",
        [
          Alcotest.test_case "empty delta iteration" `Quick test_empty_delta_iteration;
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_accounting;
          Alcotest.test_case "append-only patching" `Quick test_index_patching;
          Alcotest.test_case "popped-scope invalidation" `Quick test_popped_scope_invalidation;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick test_disabled_records_nothing;
        ] );
    ]
