(* Crash recovery: simulate process death at every durability injection
   point across randomized programs, recover from checkpoint + journal, and
   require the recovered state (and the finished run) to dump byte-identical
   to an uninterrupted run. *)

module E = Egglog

let all_points =
  [
    "journal.append.before";
    "journal.append.torn";
    "journal.append.synced";
    "checkpoint.before";
    "checkpoint.unrenamed";
    "checkpoint.renamed";
    "checkpoint.before-reset";
    "engine.iteration";
    "engine.top-action";
  ]

(* ---- scratch directories ---- *)

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "egglog_recovery_%d_%d" (Unix.getpid ()) !ctr)
    in
    Unix.mkdir d 0o755;
    d

let cleanup_dir d =
  Array.iter (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ()) (Sys.readdir d);
  try Unix.rmdir d with Unix.Unix_error _ -> ()

(* ---- random program generation ----

   Deterministic programs drawn from a grammar that exercises everything
   the journal must reproduce: relations and ground facts (Datalog),
   datatype terms and unions (e-graph), rules and rewrites added mid-run,
   saturation runs, push/pop, and passing checks. All commands are
   journal-worthy and always succeed, so the journal records the whole
   program in order. *)

let gen_program (rng : Random.State.t) : E.Ast.command list =
  let n_cmds = 8 + Random.State.int rng 8 in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "(relation edge (i64 i64))";
  add "(relation path (i64 i64))";
  add "(datatype M (Num i64) (Add M M))";
  (* edges known to hold at the current push depth (pop rolls back the
     scope's additions, so checks may only name surviving edges) *)
  let edges = ref [ [] ] in
  let note e = edges := (e :: List.hd !edges) :: List.tl !edges in
  let rules_added = ref false in
  for _ = 1 to n_cmds do
    match Random.State.int rng 10 with
    | 0 | 1 | 2 ->
      let a = Random.State.int rng 5 and b = Random.State.int rng 5 in
      note (a, b);
      add "(edge %d %d)" a b
    | 3 ->
      let a = Random.State.int rng 4 and b = Random.State.int rng 4 in
      add "(union (Num %d) (Num %d))" a b
    | 4 ->
      let a = Random.State.int rng 4 and b = Random.State.int rng 4 in
      add "(Add (Num %d) (Num %d))" a b
    | 5 when not !rules_added ->
      rules_added := true;
      add "(rule ((edge x y)) ((path x y)))";
      add "(rule ((path x y) (edge y z)) ((path x z)))";
      add "(rewrite (Add a b) (Add b a))"
    | 5 | 6 -> add "(run 2)"
    | 7 ->
      (match List.hd !edges with
       | (a, b) :: _ -> add "(check (edge %d %d))" a b
       | [] ->
         note (0, 0);
         add "(edge 0 0)")
    | 8 when List.length !edges <= 2 ->
      edges := List.hd !edges :: !edges;
      add "(push)"
    | 8 | 9 ->
      if List.length !edges > 1 then begin
        edges := List.tl !edges;
        add "(pop)"
      end
      else add "(run 1)"
    | _ -> assert false
  done;
  (* close any open scopes so checkpoints are not deferred forever *)
  for _ = 1 to List.length !edges - 1 do
    add "(pop)"
  done;
  add "(run 3)";
  E.Frontend.parse_program (Buffer.contents buf)

(* ---- reference runs ---- *)

(* State after the first [k] journal-worthy commands, straight-line (no
   journal involved). *)
let reference_dump cmds k =
  let eng = E.Engine.create () in
  let count = ref 0 in
  List.iter
    (fun c ->
      if !count < k then begin
        ignore (E.Engine.run_command eng c);
        if E.Durable.journal_worthy c then incr count
      end)
    cmds;
  E.Serialize.dump_string eng

let remaining_after cmds k =
  let rec go n cmds =
    if n >= k then cmds
    else
      match cmds with
      | [] -> []
      | c :: rest -> go (n + if E.Durable.journal_worthy c then 1 else 0) rest
  in
  go 0 cmds

(* ---- the crash matrix ---- *)

let checkpoint_every = Some 3

(* One full journaled run under hit counting: how often does each injection
   point fire for this program? Deterministic, so the same schedule holds
   for the crashing runs. *)
let count_hits cmds =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      E.Fault.disarm ();
      cleanup_dir dir)
    (fun () ->
      E.Fault.arm_counting ();
      let eng = E.Engine.create () in
      let d =
        E.Durable.attach eng ~journal_path:(Filename.concat dir "journal") ~checkpoint_every
      in
      List.iter (fun c -> ignore (E.Durable.run_command d c)) cmds;
      E.Durable.close d;
      E.Fault.hit_counts ())

let crash_recover_finish ~label cmds ~full_dump point occ =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      E.Fault.disarm ();
      cleanup_dir dir)
    (fun () ->
      let journal_path = Filename.concat dir "journal" in
      (* phase 1: run until the simulated crash *)
      let eng = E.Engine.create () in
      let d = E.Durable.attach eng ~journal_path ~checkpoint_every in
      E.Fault.arm_nth point occ;
      let crashed =
        try
          List.iter (fun c -> ignore (E.Durable.run_command d c)) cmds;
          false
        with E.Fault.Crash _ -> true
      in
      E.Fault.disarm ();
      E.Durable.close d;
      Alcotest.(check bool) (label ^ ": crash fired") true crashed;
      (* phase 2: recover into a fresh engine; its state must equal a
         straight-line run of exactly the committed prefix *)
      let eng2 = E.Engine.create () in
      let d2, report = E.Durable.recover eng2 ~journal_path ~checkpoint_every in
      Alcotest.(check string)
        (label ^ ": recovered dump = committed prefix")
        (reference_dump cmds report.E.Durable.rc_committed)
        (E.Serialize.dump_string eng2);
      (* phase 3: finish the program on the recovered engine; the final
         state must equal the uninterrupted run *)
      let rest = remaining_after cmds report.E.Durable.rc_committed in
      List.iter (fun c -> ignore (E.Durable.run_command d2 c)) rest;
      Alcotest.(check string)
        (label ^ ": finished dump = uninterrupted run")
        full_dump
        (E.Serialize.dump_string eng2);
      E.Durable.close d2)

let test_crash_matrix seed () =
  let rng = Random.State.make [| seed |] in
  let cmds = gen_program rng in
  let full_dump = reference_dump cmds max_int in
  let hits = count_hits cmds in
  let tested = ref 0 in
  List.iter
    (fun point ->
      let h = match List.assoc_opt point hits with Some h -> h | None -> 0 in
      if h > 0 then begin
        let occs = List.sort_uniq Int.compare [ 1; ((h + 1) / 2 : int); h ] in
        List.iter
          (fun occ ->
            if occ >= 1 && occ <= h then begin
              incr tested;
              let label = Printf.sprintf "seed %d %s:%d" seed point occ in
              crash_recover_finish ~label cmds ~full_dump point occ
            end)
          occs
      end)
    all_points;
  if !tested = 0 then Alcotest.fail "no injection point fired at all"

(* ---- two sessions, independent fates ----

   The daemon keeps one journal per session in a shared data directory.
   A crash mid-way through one session's work must not pollute any other:
   each journal recovers on its own, and the survivor recovers to exactly
   its own full history even though the other file ends in a torn tail. *)

let test_two_sessions_independent seed () =
  let rng = Random.State.make [| (seed * 97) + 13 |] in
  let cmds_a = gen_program rng in
  let cmds_b = gen_program rng in
  let full_a = reference_dump cmds_a max_int in
  let full_b = reference_dump cmds_b max_int in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      E.Fault.disarm ();
      cleanup_dir dir)
    (fun () ->
      let ja = Filename.concat dir "a.journal" in
      let jb = Filename.concat dir "b.journal" in
      (* interleave: half of A, then B until it crashes, then the rest of A
         — A's session stays healthy across B's death *)
      let half = List.length cmds_a / 2 in
      let a1 = List.filteri (fun i _ -> i < half) cmds_a in
      let a2 = List.filteri (fun i _ -> i >= half) cmds_a in
      let ea = E.Engine.create () in
      let da = E.Durable.attach ea ~journal_path:ja ~checkpoint_every in
      List.iter (fun c -> ignore (E.Durable.run_command da c)) a1;
      let eb = E.Engine.create () in
      let db = E.Durable.attach eb ~journal_path:jb ~checkpoint_every in
      E.Fault.arm_nth "journal.append.torn" 2;
      let crashed =
        try
          List.iter (fun c -> ignore (E.Durable.run_command db c)) cmds_b;
          false
        with E.Fault.Crash _ -> true
      in
      E.Fault.disarm ();
      E.Durable.close db;
      Alcotest.(check bool) "B crashed mid-journal" true crashed;
      List.iter (fun c -> ignore (E.Durable.run_command da c)) a2;
      E.Durable.close da;
      (* recover each independently *)
      let ea2 = E.Engine.create () in
      let da2, report_a = E.Durable.recover ea2 ~journal_path:ja ~checkpoint_every in
      Alcotest.(check bool) "A's journal is whole" false report_a.E.Durable.rc_torn;
      Alcotest.(check string) "A recovers its full history, untouched by B's crash" full_a
        (E.Serialize.dump_string ea2);
      E.Durable.close da2;
      let eb2 = E.Engine.create () in
      let db2, report_b = E.Durable.recover eb2 ~journal_path:jb ~checkpoint_every in
      Alcotest.(check string) "B recovers exactly its committed prefix"
        (reference_dump cmds_b report_b.E.Durable.rc_committed)
        (E.Serialize.dump_string eb2);
      (* and B can finish its program from where it left off *)
      let rest = remaining_after cmds_b report_b.E.Durable.rc_committed in
      List.iter (fun c -> ignore (E.Durable.run_command db2 c)) rest;
      Alcotest.(check string) "B finishes to the uninterrupted result" full_b
        (E.Serialize.dump_string eb2);
      E.Durable.close db2)

(* ---- targeted scenarios ---- *)

let test_torn_tail_truncated () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> cleanup_dir dir)
    (fun () ->
      let path = Filename.concat dir "journal" in
      let j = E.Journal.create path ~ckpt_seq:0 in
      E.Journal.append j "(edge 1 2)";
      E.Journal.append j "(edge 2 3)";
      E.Journal.close j;
      (* simulate a crash mid-append: half a record at the end *)
      let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
      Out_channel.output_string oc "r 999 00000000\n(edge 3";
      Out_channel.close oc;
      let contents = E.Journal.read path in
      Alcotest.(check bool) "torn detected" true contents.E.Journal.torn;
      Alcotest.(check (list string))
        "valid prefix kept"
        [ "(edge 1 2)"; "(edge 2 3)" ]
        contents.E.Journal.entries;
      (* reopening truncates the torn tail and appending works again *)
      let j2, reopened = E.Journal.open_append path in
      Alcotest.(check bool) "reopen reports torn" true reopened.E.Journal.torn;
      E.Journal.append j2 "(edge 3 4)";
      E.Journal.close j2;
      let final = E.Journal.read path in
      Alcotest.(check bool) "clean after truncation" false final.E.Journal.torn;
      Alcotest.(check (list string))
        "appended after truncation"
        [ "(edge 1 2)"; "(edge 2 3)"; "(edge 3 4)" ]
        final.E.Journal.entries)

let test_attach_refuses_existing () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> cleanup_dir dir)
    (fun () ->
      let path = Filename.concat dir "journal" in
      let d =
        E.Durable.attach (E.Engine.create ()) ~journal_path:path ~checkpoint_every:None
      in
      E.Durable.close d;
      match E.Durable.attach (E.Engine.create ()) ~journal_path:path ~checkpoint_every:None with
      | _ -> Alcotest.fail "attach over an existing journal must be refused"
      | exception E.Journal.Journal_error _ -> ())

let test_corrupt_checkpoint_is_clear_error () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> cleanup_dir dir)
    (fun () ->
      let path = Filename.concat dir "journal" in
      let eng = E.Engine.create () in
      let d = E.Durable.attach eng ~journal_path:path ~checkpoint_every:(Some 2) in
      let cmds =
        E.Frontend.parse_program
          "(relation edge (i64 i64)) (edge 1 2) (edge 2 3) (edge 3 4)"
      in
      List.iter (fun c -> ignore (E.Durable.run_command d c)) cmds;
      E.Durable.close d;
      (* destroy the checkpoint generation the journal depends on *)
      let ckpt =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> not (String.equal f "journal"))
        |> List.sort String.compare |> List.rev |> List.hd
      in
      let ckpt_path = Filename.concat dir ckpt in
      let bytes = In_channel.with_open_bin ckpt_path In_channel.input_all in
      let b = Bytes.of_string bytes in
      Bytes.set b (Bytes.length b - 3) '\255';
      Out_channel.with_open_bin ckpt_path (fun oc -> Out_channel.output_bytes oc b);
      match E.Durable.recover (E.Engine.create ()) ~journal_path:path ~checkpoint_every:None with
      | _ -> Alcotest.fail "recovery from a corrupt checkpoint must fail"
      | exception E.Journal.Journal_error msg ->
        Alcotest.(check bool)
          "error names the missing generation" true
          (let rec has i =
             i + 10 <= String.length msg
             && (String.equal (String.sub msg i 10) "checkpoint" || has (i + 1))
           in
           has 0))

let test_checkpoint_deferred_inside_push () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> cleanup_dir dir)
    (fun () ->
      let path = Filename.concat dir "journal" in
      let eng = E.Engine.create () in
      let d = E.Durable.attach eng ~journal_path:path ~checkpoint_every:(Some 3) in
      let run src =
        List.iter
          (fun c -> ignore (E.Durable.run_command d c))
          (E.Frontend.parse_program src)
      in
      let ckpts () =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> not (String.equal f "journal"))
        |> List.length
      in
      (* 6 commands cross the every-3 threshold, but inside the scope *)
      run "(relation edge (i64 i64)) (push) (edge 1 2) (edge 2 3) (edge 3 4) (edge 4 5)";
      Alcotest.(check int) "no checkpoint inside push" 0 (ckpts ());
      run "(pop)";
      Alcotest.(check bool) "checkpoint resumes after pop" true (ckpts () > 0);
      E.Durable.close d)

let test_recover_fresh_journal () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> cleanup_dir dir)
    (fun () ->
      let path = Filename.concat dir "journal" in
      E.Durable.close
        (E.Durable.attach (E.Engine.create ()) ~journal_path:path ~checkpoint_every:None);
      let eng = E.Engine.create () in
      let _, report = E.Durable.recover eng ~journal_path:path ~checkpoint_every:None in
      Alcotest.(check int) "nothing committed" 0 report.E.Durable.rc_committed;
      Alcotest.(check int) "nothing replayed" 0 report.E.Durable.rc_replayed)

let test_journal_version_rejected () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> cleanup_dir dir)
    (fun () ->
      let path = Filename.concat dir "journal" in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "egglog-journal 99 0\n");
      match E.Journal.read path with
      | _ -> Alcotest.fail "future journal version must be rejected"
      | exception E.Journal.Journal_error msg ->
        Alcotest.(check bool) "mentions version" true
          (let rec has i =
             i + 7 <= String.length msg
             && (String.equal (String.sub msg i 7) "version" || has (i + 1))
           in
           has 0))

let test_command_print_roundtrip () =
  (* the journal records commands as printed text; for every construct the
     parser can produce, print -> parse -> print must be a fixpoint *)
  let corpus =
    {|
    (sort S)
    (ruleset rs)
    (datatype M (Num i64) (Var String) (Add M M))
    (function f (i64 String) Rational :merge new :cost 3)
    (function g (M) M :default (Num 0))
    (relation edge (i64 i64))
    (rule ((edge x y) (= z (Add (Num x) (Num y)))) ((edge y x) (let w (Num 9)) (union z w))
          :name "my rule" :ruleset rs)
    (rewrite (Add a b) (Add b a) :when ((edge 1 2)) :ruleset rs)
    (define e (Add (Num 1) (Var "x")))
    (set (f 1 "k") 3/4)
    (delete (edge 1 2))
    (union (Num 1) (Num 2))
    (run 5)
    (run 2 :until ((edge 1 2) (edge 2 3)))
    (run 2 :until (edge 1 2))
    (run 3 :node-limit 100 :time-limit 2)
    (run-schedule (saturate (run rs 1)) (repeat 2 (run 1)) (seq (run 1) (run 2)))
    (check (edge 1 2) (= (Num 1) (Num 2)))
    (fail (check (edge 9 9)))
    (extract (Num 1) :variants 3)
    (simplify 10 (Add (Num 1) (Num 2)))
    (include "other.egg")
    (push)
    (pop)
    (print-function edge 10)
    (print-size edge)
    (print-stats)
    |}
  in
  List.iter
    (fun cmd ->
      let printed = E.Frontend.command_to_string cmd in
      match E.Frontend.command_of_sexp (Sexpr.parse_one printed) with
      | [ cmd' ] ->
        Alcotest.(check string)
          ("fixpoint: " ^ printed) printed
          (E.Frontend.command_to_string cmd')
      | _ -> Alcotest.failf "%s did not reparse to one command" printed
      | exception e ->
        Alcotest.failf "%s failed to reparse: %s" printed (Printexc.to_string e))
    (E.Frontend.parse_program corpus)

let () =
  Alcotest.run "recovery"
    [
      ( "crash-matrix",
        [
          Alcotest.test_case "seed 1" `Quick (test_crash_matrix 1);
          Alcotest.test_case "seed 2" `Quick (test_crash_matrix 2);
          Alcotest.test_case "seed 3" `Quick (test_crash_matrix 3);
        ] );
      ( "two-sessions",
        [
          Alcotest.test_case "independent crash/recovery, seed 1" `Quick
            (test_two_sessions_independent 1);
          Alcotest.test_case "independent crash/recovery, seed 2" `Quick
            (test_two_sessions_independent 2);
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "torn tail truncated" `Quick test_torn_tail_truncated;
          Alcotest.test_case "attach refuses existing journal" `Quick test_attach_refuses_existing;
          Alcotest.test_case "corrupt checkpoint is a clear error" `Quick
            test_corrupt_checkpoint_is_clear_error;
          Alcotest.test_case "checkpoint deferred inside push" `Quick
            test_checkpoint_deferred_inside_push;
          Alcotest.test_case "recover a fresh journal" `Quick test_recover_fresh_journal;
          Alcotest.test_case "future journal version rejected" `Quick
            test_journal_version_rejected;
          Alcotest.test_case "command print/parse fixpoint" `Quick
            test_command_print_roundtrip;
        ] );
    ]
