(* The Herbie case study (§6.2): error metric, interval/neq analyses as
   egglog rules, and the improvement pipeline. *)

module F = Herbie.Fpexpr
module E = Herbie.Error
module S = Herbie.Suite
module R = Herbie.Rules
module P = Herbie.Pipeline

let test_eval_consistency () =
  let e = F.Div (F.Sub (F.Sqrt (F.Var "x"), F.Num (Rat.of_int 1)), F.Var "y") in
  let env = function "x" -> 4.0 | "y" -> 2.0 | _ -> nan in
  Alcotest.(check (float 1e-12)) "double" 0.5 (F.eval_double env e);
  Alcotest.(check (float 1e-12)) "dd agrees" 0.5 (Dd.to_float (F.eval_dd env e))

let test_ulps () =
  Alcotest.(check (float 0.0)) "same value" 0.0 (E.ulps_between 1.0 1.0);
  Alcotest.(check (float 0.0)) "one ulp" 1.0 (E.ulps_between 1.0 (Float.succ 1.0));
  Alcotest.(check bool) "sign change is far" true (E.ulps_between (-1.0) 1.0 > 1e18)

let test_error_metric () =
  (* an exactly-representable computation has ~0 bits of error *)
  let exact = F.Mul (F.Var "x", F.Num (Rat.of_int 2)) in
  let spec = E.default_spec [ ("x", 1.0, 1e6) ] in
  Alcotest.(check bool) "exact op ~ 0 bits" true (E.avg_bits spec exact < 0.01);
  (* catastrophic cancellation is very inaccurate *)
  let cancel = F.Sub (F.Sqrt (F.Add (F.Var "x", F.Num (Rat.of_int 1))), F.Sqrt (F.Var "x")) in
  let spec = E.default_spec [ ("x", 1e10, 1e15) ] in
  Alcotest.(check bool) "cancellation is >10 bits" true (E.avg_bits spec cancel > 10.0)

let test_equivalence_check () =
  let spec = E.default_spec [ ("x", 1.0, 1e6) ] in
  let a = F.Mul (F.Var "x", F.Num (Rat.of_int 2)) in
  let b = F.Add (F.Var "x", F.Var "x") in
  let wrong = F.Add (F.Var "x", F.Num (Rat.of_int 2)) in
  Alcotest.(check bool) "2x = x+x" true (E.equivalent_on spec a b);
  Alcotest.(check bool) "2x != x+2" false (E.equivalent_on spec a wrong);
  (* sqrt(x^2) vs x differ on negatives *)
  let spec_neg = E.default_spec [ ("x", -1e4, -1.0) ] in
  let sq = F.Sqrt (F.Mul (F.Var "x", F.Var "x")) in
  Alcotest.(check bool) "sqrt(x^2) != x for x<0" false (E.equivalent_on spec_neg sq (F.Var "x"))

let test_roundtrip () =
  List.iter
    (fun (b : S.bench) ->
      let eng = Egglog.Engine.create () in
      ignore (Egglog.run_string eng R.datatype);
      ignore (Egglog.run_string eng (Printf.sprintf "(define root %s)" (R.expr_to_egglog b.S.expr)));
      let root = Egglog.Engine.eval_call eng "root" [] in
      match Egglog.Engine.extract_value eng root with
      | Some { Egglog.Extract.term; _ } ->
        let back = R.term_to_expr term in
        let spec = E.default_spec b.S.ranges in
        Alcotest.(check bool) (b.S.name ^ " roundtrips") true (E.equivalent_on spec b.S.expr back)
      | None -> Alcotest.fail "nothing extracted")
    S.benches

let test_rulesets_load () =
  let eng = Egglog.Engine.create () in
  ignore (Egglog.run_string eng (R.sound_program ()));
  let eng2 = Egglog.Engine.create () in
  ignore (Egglog.run_string eng2 (R.unsound_program ()));
  Alcotest.(check pass) "both parse and typecheck" () ()

let test_interval_analysis () =
  let eng = Egglog.Engine.create () in
  ignore (Egglog.run_string eng (R.sound_program ()));
  ignore
    (Egglog.run_string eng
       {|
    (set (lo (RVar "x")) 2/1)
    (set (hi (RVar "x")) 3/1)
    (define e (RMul (RAdd (RVar "x") (RNum 1/1)) (RVar "x")))
    (run 6)
    (check (= (lo e) 6/1))
    (check (= (hi e) 12/1))
    (check (nonzero e))
    (check (pos e))
  |});
  Alcotest.(check pass) "interval propagation" () ()

let test_neq_analysis () =
  let eng = Egglog.Engine.create () in
  ignore (Egglog.run_string eng (R.sound_program ()));
  ignore
    (Egglog.run_string eng
       {|
    (define a (RCbrt (RAdd (RVar "v") (RNum 1/1))))
    (define b (RCbrt (RVar "v")))
    (run 6)
    (check (neq (RAdd (RVar "v") (RNum 1/1)) (RVar "v")))
    (check (neq a b))
  |});
  Alcotest.(check pass) "v+1 != v lifts through cbrt" () ()

let test_sqrt_cancel_improves () =
  let outcome = P.improve P.Sound (S.find "sqrt-cancel") in
  Alcotest.(check bool) "starts inaccurate" true (outcome.P.bits_before > 10.0);
  Alcotest.(check bool) "ends accurate" true (outcome.P.bits_after < 2.0)

let test_cbrt_cancel_improves () =
  (* the paper's flagship sound-analysis example *)
  let outcome = P.improve P.Sound (S.find "cbrt-cancel") in
  Alcotest.(check bool) "cbrt cancellation solved" true
    (outcome.P.bits_before > 10.0 && outcome.P.bits_after < 3.0)

let test_unsound_detection () =
  let outcome = P.improve P.Unsound (S.find "sqrt-square-neg") in
  Alcotest.(check bool) "sqrt(x^2)->x rejected by sampling" true (outcome.P.n_invalid > 0);
  (* and the final answer must still be valid *)
  let spec = E.default_spec (S.find "sqrt-square-neg").S.ranges in
  Alcotest.(check bool) "result equivalent" true
    (E.equivalent_on spec (S.find "sqrt-square-neg").S.expr outcome.P.chosen)

(* Soundness triage: plant one deliberately unsound rewrite (Herbie's
   classic x/x -> 1 without its nonzero guard) among the sound base rules,
   detect the bogus equality it derives with (check), then attribute it to
   the offending rule by name via (explain) — the workflow for finding
   which rule of a large ruleset poisoned an e-graph. *)
let test_unsound_rule_triage () =
  let eng = Egglog.Engine.create () in
  ignore (Egglog.run_string eng R.datatype);
  ignore (Egglog.run_string eng R.base_rules);
  ignore
    (Egglog.run_string eng
       "(rule ((= e (RDiv x x))) ((union e (RNum 1/1))) :name \"div-cancel-unsound\")");
  ignore
    (Egglog.run_string eng
       "(define bogus (RDiv (RNum 0/1) (RNum 0/1)))\n(run 4)\n(check (= bogus (RNum 1/1)))");
  (* numeric validation refutes what the e-graph believes: 0/0 is nan *)
  let zero = F.Num (Rat.of_int 0) in
  let spec = E.default_spec [ ("x", -1.0, 1.0) ] in
  Alcotest.(check bool) "sampling refutes 0/0 = 1" false
    (E.equivalent_on spec (F.Div (zero, zero)) (F.Num (Rat.of_int 1)));
  (* the proof of the bogus equality names the culprit *)
  let joined = String.concat "\n" (Egglog.run_string eng "(explain bogus (RNum 1/1))") in
  let has needle =
    let nh = String.length joined and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub joined i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "attributed to the unsound rule" true (has "div-cancel-unsound");
  (* endpoints are rendered as extracted terms, not just raw class ids *)
  Alcotest.(check bool) "endpoints readable as terms" true (has "RNum")

let test_sound_mode_always_equivalent () =
  (* sound candidates need no validation: check a sample of benches *)
  List.iter
    (fun name ->
      let bench = S.find name in
      let outcome = P.improve P.Sound bench in
      let spec = E.default_spec bench.S.ranges in
      Alcotest.(check bool) (name ^ " sound result is equivalent") true
        (E.equivalent_on spec bench.S.expr outcome.P.chosen))
    [ "sqrt-cancel"; "mul-div-cancel"; "frac-combine-crossing"; "poly-cancel"; "div-self" ]

let test_improvement_never_hurts () =
  (* the pipeline picks by training error and falls back to the input *)
  List.iter
    (fun (b : S.bench) ->
      let s = P.improve ~iterations:4 P.Sound b in
      Alcotest.(check bool)
        (b.S.name ^ " no regression")
        true
        (s.P.bits_after <= s.P.bits_before +. 1.0))
    S.benches

let () =
  Alcotest.run "herbie"
    [
      ( "substrate",
        [
          Alcotest.test_case "eval consistency" `Quick test_eval_consistency;
          Alcotest.test_case "ulps" `Quick test_ulps;
          Alcotest.test_case "error metric" `Quick test_error_metric;
          Alcotest.test_case "equivalence check" `Quick test_equivalence_check;
          Alcotest.test_case "expr roundtrip" `Quick test_roundtrip;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "rulesets load" `Quick test_rulesets_load;
          Alcotest.test_case "intervals" `Quick test_interval_analysis;
          Alcotest.test_case "not-equals" `Quick test_neq_analysis;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "sqrt cancel" `Quick test_sqrt_cancel_improves;
          Alcotest.test_case "cbrt cancel (paper)" `Quick test_cbrt_cancel_improves;
          Alcotest.test_case "unsound detection" `Quick test_unsound_detection;
          Alcotest.test_case "unsound rule triage via explain" `Quick test_unsound_rule_triage;
          Alcotest.test_case "sound equivalence" `Quick test_sound_mode_always_equivalent;
          Alcotest.test_case "no regressions" `Slow test_improvement_never_hurts;
        ] );
    ]
